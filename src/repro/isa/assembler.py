"""Textual assembler for the synthetic ISA.

The assembly format is line oriented::

    ; comments start with ';' or '#'
    func main:
      entry:
        movi r1, 10
        movi r2, 0
      loop:
        add  r2, r2, r1
        subi r1, r1, 1
        brnz r1, loop
      done:
        store r2, [r60+0]
        halt

Rules:

* ``func NAME:`` starts a function; the first block is its entry.
* ``LABEL:`` starts a basic block.
* Memory operands are written ``[rN+IMM]`` (``+IMM`` optional).
* ``call`` takes a function name, branches take a block label.
* Instructions before the first explicit label go into an implicit
  block named ``entry``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.program.block import BasicBlock
from repro.program.builder import BlockBuilder, FunctionBuilder
from repro.program.function import Function
from repro.program.program import Program

from .instructions import IMMEDIATE_ALU, Instruction, Opcode, OPCODE_BY_MNEMONIC
from .registers import Reg, parse_reg


class AssemblyError(Exception):
    """Raised with a line number when the assembly text is malformed."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_FUNC_RE = re.compile(r"^func\s+([A-Za-z_][\w.]*)\s*:\s*$")
_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*)\s*:\s*$")
_MEM_RE = re.compile(r"^\[\s*([rf]\d+)\s*(?:\+\s*(-?\d+)\s*)?\]$")


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(text: str) -> List[str]:
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


def _parse_mem(operand: str, line_no: int) -> Tuple[Reg, int]:
    match = _MEM_RE.match(operand)
    if not match:
        raise AssemblyError(line_no, f"malformed memory operand {operand!r}")
    base = parse_reg(match.group(1))
    offset = int(match.group(2)) if match.group(2) else 0
    return base, offset


def _parse_int(operand: str, line_no: int) -> int:
    try:
        return int(operand, 0)
    except ValueError:
        raise AssemblyError(line_no, f"malformed immediate {operand!r}") from None


def assemble_instruction(mnemonic: str, operands: List[str], line_no: int) -> Instruction:
    """Assemble one instruction from its mnemonic and operand strings."""
    opcode = OPCODE_BY_MNEMONIC.get(mnemonic)
    if opcode is None:
        raise AssemblyError(line_no, f"unknown mnemonic {mnemonic!r}")

    def need(n: int) -> None:
        if len(operands) != n:
            raise AssemblyError(
                line_no, f"{mnemonic} expects {n} operand(s), got {len(operands)}"
            )

    if opcode in (Opcode.LOAD, Opcode.FLOAD):
        need(2)
        base, offset = _parse_mem(operands[1], line_no)
        return Instruction(opcode, dest=parse_reg(operands[0]), srcs=(base,), imm=offset)
    if opcode in (Opcode.STORE, Opcode.FSTORE):
        need(2)
        base, offset = _parse_mem(operands[1], line_no)
        return Instruction(opcode, srcs=(parse_reg(operands[0]), base), imm=offset)
    if opcode is Opcode.MOVI:
        need(2)
        return Instruction(
            opcode, dest=parse_reg(operands[0]), imm=_parse_int(operands[1], line_no)
        )
    if opcode in IMMEDIATE_ALU:
        need(3)
        return Instruction(
            opcode,
            dest=parse_reg(operands[0]),
            srcs=(parse_reg(operands[1]),),
            imm=_parse_int(operands[2], line_no),
        )
    if opcode in (Opcode.BRZ, Opcode.BRNZ):
        need(2)
        return Instruction(opcode, srcs=(parse_reg(operands[0]),), target=operands[1])
    if opcode in (Opcode.JUMP, Opcode.CALL):
        need(1)
        return Instruction(opcode, target=operands[0])
    if opcode in (Opcode.RET, Opcode.HALT, Opcode.NOP):
        need(0)
        return Instruction(opcode)
    if opcode in (
        Opcode.MOV,
        Opcode.FMOV,
        Opcode.FNEG,
        Opcode.FSQRT,
        Opcode.CVTIF,
        Opcode.CVTFI,
    ):
        need(2)
        return Instruction(
            opcode, dest=parse_reg(operands[0]), srcs=(parse_reg(operands[1]),)
        )
    if opcode is Opcode.CONSUME:
        return Instruction(opcode, srcs=tuple(parse_reg(op) for op in operands))
    # Remaining are three-register ALU / FP forms.
    need(3)
    return Instruction(
        opcode,
        dest=parse_reg(operands[0]),
        srcs=(parse_reg(operands[1]), parse_reg(operands[2])),
    )


def assemble(text: str, entry: str = "main", validate: bool = True) -> Program:
    """Assemble a full program from text."""
    functions: List[Function] = []
    fb: Optional[FunctionBuilder] = None
    bb: Optional[BlockBuilder] = None

    def finish_function(line_no: int) -> None:
        nonlocal fb, bb
        if fb is None:
            return
        try:
            functions.append(fb.build())
        except Exception as exc:
            raise AssemblyError(line_no, str(exc)) from exc
        fb = None
        bb = None

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        func_match = _FUNC_RE.match(line)
        if func_match:
            finish_function(line_no)
            fb = FunctionBuilder(func_match.group(1))
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            if fb is None:
                raise AssemblyError(line_no, "label outside of any function")
            bb = fb.block(label_match.group(1))
            continue
        if fb is None:
            raise AssemblyError(line_no, "instruction outside of any function")
        if bb is None or bb.terminated:
            # Implicit block start (first block, or after a terminator
            # with no explicit label).
            label = "entry" if bb is None else fb.fresh_label("anon")
            bb = fb.block(label)
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1] if len(parts) > 1 else "")
        bb.raw(assemble_instruction(mnemonic, operands, line_no))

    finish_function(line_no=len(text.splitlines()) + 1)
    if not functions:
        raise AssemblyError(0, "no functions in input")
    program = Program(functions, entry=entry)
    if validate:
        program.validate()
    return program


def assemble_function(text: str) -> Function:
    """Assemble a single function (text must contain exactly one)."""
    name_line = next(
        (line for line in text.splitlines() if _strip_comment(line)), ""
    )
    match = _FUNC_RE.match(_strip_comment(name_line))
    if not match:
        raise AssemblyError(1, "input must start with 'func NAME:'")
    program = assemble(text, entry=match.group(1), validate=False)
    if len(program.functions) != 1:
        raise AssemblyError(0, "assemble_function expects exactly one function")
    return program.functions[match.group(1)]
