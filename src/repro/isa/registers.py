"""Register model for the synthetic EPIC-like ISA.

The machine has 64 general-purpose integer registers (``r0`` .. ``r63``)
and 32 floating-point registers (``f0`` .. ``f31``).  A small calling
convention is fixed here so that inter-procedural analyses (liveness at
call sites, exit-block dummy consumers) have something concrete to work
against:

* ``r1`` .. ``r8``  — argument registers (caller sets, callee reads)
* ``r1``            — integer return value
* ``f1``            — floating-point return value
* ``r60``           — stack pointer
* ``r63``           — return-address register (written by ``call``)
* ``r9`` .. ``r31`` and ``f2`` .. ``f15`` — caller-saved scratch
* ``r32`` .. ``r59`` and ``f16`` .. ``f31`` — callee-saved
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet


class RegClass(Enum):
    """Architectural register file a register belongs to."""

    INT = "r"
    FLOAT = "f"


INT_REG_COUNT = 64
FLOAT_REG_COUNT = 32


@dataclass(frozen=True)
class Reg:
    """A single architectural register (e.g. ``r5`` or ``f2``)."""

    cls: RegClass
    index: int

    def __lt__(self, other: "Reg") -> bool:
        if not isinstance(other, Reg):
            return NotImplemented
        return (self.cls.value, self.index) < (other.cls.value, other.index)

    def __post_init__(self) -> None:
        limit = INT_REG_COUNT if self.cls is RegClass.INT else FLOAT_REG_COUNT
        if not 0 <= self.index < limit:
            raise ValueError(
                f"register index {self.index} out of range for {self.cls.name}"
            )

    @property
    def name(self) -> str:
        return f"{self.cls.value}{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return self.name

    def __str__(self) -> str:
        return self.name


def R(index: int) -> Reg:
    """Shorthand constructor for an integer register."""
    return Reg(RegClass.INT, index)


def F(index: int) -> Reg:
    """Shorthand constructor for a floating-point register."""
    return Reg(RegClass.FLOAT, index)


def parse_reg(text: str) -> Reg:
    """Parse a register name such as ``"r12"`` or ``"f3"``.

    Raises :class:`ValueError` for malformed names or out-of-range
    indices.
    """
    text = text.strip().lower()
    if len(text) < 2 or text[0] not in ("r", "f"):
        raise ValueError(f"malformed register name: {text!r}")
    try:
        index = int(text[1:])
    except ValueError as exc:
        raise ValueError(f"malformed register name: {text!r}") from exc
    cls = RegClass.INT if text[0] == "r" else RegClass.FLOAT
    return Reg(cls, index)


# Calling convention ---------------------------------------------------

ARG_REGS: tuple = tuple(R(i) for i in range(1, 9))
INT_RETURN_REG: Reg = R(1)
FLOAT_RETURN_REG: Reg = F(1)
STACK_POINTER: Reg = R(60)
RETURN_ADDRESS_REG: Reg = R(63)

CALLER_SAVED: FrozenSet[Reg] = frozenset(
    [*(R(i) for i in range(1, 32)), *(F(i) for i in range(0, 16)), R(63)]
)
CALLEE_SAVED: FrozenSet[Reg] = frozenset(
    [*(R(i) for i in range(32, 60)), *(F(i) for i in range(16, 32)), R(60)]
)

ALL_REGS: tuple = tuple(
    [R(i) for i in range(INT_REG_COUNT)] + [F(i) for i in range(FLOAT_REG_COUNT)]
)
