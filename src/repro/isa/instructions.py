"""Instruction set for the synthetic EPIC-like machine.

The paper evaluates on an 8-issue EPIC machine with five functional
unit classes (Table 2): integer ALU, floating point, long-latency
floating point, memory, and control.  This module defines a compact
fixed-width instruction set covering those classes, together with the
:class:`Instruction` record used throughout the program model,
analyses, optimizer, and simulators.

Every instruction carries a globally unique ``uid``.  When the package
extractor copies instructions into packages, the copies record the uid
of the instruction they were cloned from in ``origin``; following the
``origin`` chain back to the original binary is how the behavioral
execution engine and the coverage/timing experiments relate replicated
code to the branch it came from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterable, Optional, Tuple

from .registers import Reg


class FuClass(Enum):
    """Functional-unit class an opcode executes on (Table 2)."""

    IALU = "ialu"
    FPU = "fpu"
    LONG_FP = "long_fp"
    MEM = "mem"
    BRANCH = "branch"
    PSEUDO = "pseudo"


class Opcode(Enum):
    """Opcodes of the synthetic ISA.

    The ``value`` tuple is ``(mnemonic, fu_class, code)`` where ``code``
    is the byte used by the binary encoding.
    """

    # Integer ALU --------------------------------------------------
    ADD = ("add", FuClass.IALU, 0x01)
    SUB = ("sub", FuClass.IALU, 0x02)
    MUL = ("mul", FuClass.IALU, 0x03)
    AND = ("and", FuClass.IALU, 0x04)
    OR = ("or", FuClass.IALU, 0x05)
    XOR = ("xor", FuClass.IALU, 0x06)
    SHL = ("shl", FuClass.IALU, 0x07)
    SHR = ("shr", FuClass.IALU, 0x08)
    SLT = ("slt", FuClass.IALU, 0x09)
    SEQ = ("seq", FuClass.IALU, 0x0A)
    SNE = ("sne", FuClass.IALU, 0x0B)
    ADDI = ("addi", FuClass.IALU, 0x0C)
    SUBI = ("subi", FuClass.IALU, 0x0D)
    MULI = ("muli", FuClass.IALU, 0x0E)
    ANDI = ("andi", FuClass.IALU, 0x0F)
    ORI = ("ori", FuClass.IALU, 0x10)
    XORI = ("xori", FuClass.IALU, 0x11)
    SHLI = ("shli", FuClass.IALU, 0x12)
    SHRI = ("shri", FuClass.IALU, 0x13)
    SLTI = ("slti", FuClass.IALU, 0x14)
    MOV = ("mov", FuClass.IALU, 0x15)
    MOVI = ("movi", FuClass.IALU, 0x16)
    NOP = ("nop", FuClass.IALU, 0x17)

    # Memory -------------------------------------------------------
    LOAD = ("load", FuClass.MEM, 0x20)
    STORE = ("store", FuClass.MEM, 0x21)
    FLOAD = ("fload", FuClass.MEM, 0x22)
    FSTORE = ("fstore", FuClass.MEM, 0x23)

    # Floating point ----------------------------------------------
    FADD = ("fadd", FuClass.FPU, 0x30)
    FSUB = ("fsub", FuClass.FPU, 0x31)
    FMUL = ("fmul", FuClass.FPU, 0x32)
    FMOV = ("fmov", FuClass.FPU, 0x33)
    FNEG = ("fneg", FuClass.FPU, 0x34)
    CVTIF = ("cvtif", FuClass.FPU, 0x35)
    CVTFI = ("cvtfi", FuClass.FPU, 0x36)

    # Long-latency floating point ----------------------------------
    FDIV = ("fdiv", FuClass.LONG_FP, 0x40)
    FSQRT = ("fsqrt", FuClass.LONG_FP, 0x41)

    # Control ------------------------------------------------------
    BRZ = ("brz", FuClass.BRANCH, 0x50)
    BRNZ = ("brnz", FuClass.BRANCH, 0x51)
    JUMP = ("jump", FuClass.BRANCH, 0x52)
    CALL = ("call", FuClass.BRANCH, 0x53)
    RET = ("ret", FuClass.BRANCH, 0x54)
    HALT = ("halt", FuClass.BRANCH, 0x55)

    # Pseudo-instructions (never emitted to the binary image) ------
    # CONSUME marks registers live across a package side exit; the
    # optimizer treats it as a use so data-flow stays sound after cold
    # code is removed (paper section 3.3.1).
    CONSUME = ("consume", FuClass.PSEUDO, 0x7F)

    # Plain attributes, not properties: opcode classification sits on
    # the hottest paths (encoding, block sizing, scheduling) and a
    # descriptor call per access is measurable there.
    def __init__(self, mnemonic: str, fu_class: FuClass, code: int):
        self.mnemonic = mnemonic
        self.fu_class = fu_class
        self.code = code


OPCODE_BY_MNEMONIC = {op.mnemonic: op for op in Opcode}
OPCODE_BY_CODE = {op.code: op for op in Opcode}

CONDITIONAL_BRANCHES = frozenset({Opcode.BRZ, Opcode.BRNZ})
CONTROL_OPCODES = frozenset(
    {Opcode.BRZ, Opcode.BRNZ, Opcode.JUMP, Opcode.CALL, Opcode.RET, Opcode.HALT}
)
IMMEDIATE_ALU = frozenset(
    {
        Opcode.ADDI,
        Opcode.SUBI,
        Opcode.MULI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SHLI,
        Opcode.SHRI,
        Opcode.SLTI,
    }
)

_uid_counter = itertools.count(1)


def _next_uid() -> int:
    return next(_uid_counter)


@dataclass
class Instruction:
    """One machine instruction.

    Fields:

    * ``opcode`` — the operation.
    * ``dest`` — destination register, or ``None``.
    * ``srcs`` — source registers, in operand order.
    * ``imm`` — immediate operand (ALU immediates, memory displacement).
    * ``target`` — label or function-name operand of control transfers.
    * ``uid`` — globally unique id, assigned at construction.
    * ``origin`` — uid of the instruction this one was copied from, or
      ``None`` when the instruction belongs to the original binary.
    """

    opcode: Opcode
    dest: Optional[Reg] = None
    srcs: Tuple[Reg, ...] = ()
    imm: int = 0
    target: Optional[str] = None
    uid: int = field(default_factory=_next_uid)
    origin: Optional[int] = None

    # -- classification -------------------------------------------
    @property
    def fu_class(self) -> FuClass:
        return self.opcode.fu_class

    # Classification avoids frozenset membership (enum hashing is
    # surprisingly hot): control opcodes are exactly the BRANCH
    # functional-unit class, pseudo exactly the PSEUDO class.
    @property
    def is_control(self) -> bool:
        return self.opcode.fu_class is FuClass.BRANCH

    @property
    def is_conditional_branch(self) -> bool:
        opcode = self.opcode
        return opcode is Opcode.BRZ or opcode is Opcode.BRNZ

    @property
    def is_call(self) -> bool:
        return self.opcode is Opcode.CALL

    @property
    def is_return(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_store(self) -> bool:
        return self.opcode in (Opcode.STORE, Opcode.FSTORE)

    @property
    def is_load(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.FLOAD)

    @property
    def is_memory(self) -> bool:
        return self.opcode.fu_class is FuClass.MEM

    @property
    def is_pseudo(self) -> bool:
        return self.opcode.fu_class is FuClass.PSEUDO

    # -- data-flow ------------------------------------------------
    def defs(self) -> Tuple[Reg, ...]:
        """Registers written by this instruction (ignoring calls).

        Call-site register effects depend on the calling convention and
        are handled by the liveness analysis, not here.
        """
        if self.dest is not None:
            return (self.dest,)
        return ()

    def uses(self) -> Tuple[Reg, ...]:
        """Registers read by this instruction (ignoring calls)."""
        return self.srcs

    def root_origin(self) -> int:
        """Uid identifying the original-binary instruction this came from."""
        return self.origin if self.origin is not None else self.uid

    # -- copying ---------------------------------------------------
    def clone(self) -> "Instruction":
        """Copy this instruction, recording its provenance in ``origin``.

        Built by copying ``__dict__`` directly: package extraction and
        the rewriter clone whole programs, and ``dataclasses.replace``
        (or even ``__init__``) costs a multiple of this per copy.
        """
        new = object.__new__(Instruction)
        d = dict(self.__dict__)
        d["uid"] = _next_uid()
        if d["origin"] is None:
            d["origin"] = self.uid
        new.__dict__ = d
        return new

    def retargeted(self, target: str) -> "Instruction":
        """Copy of this instruction with a different control target.

        The uid is preserved: retargeting models a post-link patch of
        the same binary instruction, not a new instruction.
        """
        return Instruction(
            opcode=self.opcode,
            dest=self.dest,
            srcs=self.srcs,
            imm=self.imm,
            target=target,
            uid=self.uid,
            origin=self.origin,
        )

    # -- printing --------------------------------------------------
    def render(self) -> str:
        """Assembly text for this instruction (without address)."""
        op = self.opcode
        parts = [op.mnemonic]
        operands = []
        if op in (Opcode.LOAD, Opcode.FLOAD):
            operands = [str(self.dest), f"[{self.srcs[0]}+{self.imm}]"]
        elif op in (Opcode.STORE, Opcode.FSTORE):
            operands = [str(self.srcs[0]), f"[{self.srcs[1]}+{self.imm}]"]
        elif op is Opcode.MOVI:
            operands = [str(self.dest), str(self.imm)]
        elif op in IMMEDIATE_ALU:
            operands = [str(self.dest), str(self.srcs[0]), str(self.imm)]
        elif op in (Opcode.BRZ, Opcode.BRNZ):
            operands = [str(self.srcs[0]), str(self.target)]
        elif op in (Opcode.JUMP, Opcode.CALL):
            operands = [str(self.target)]
        elif op in (Opcode.RET, Opcode.HALT, Opcode.NOP):
            operands = []
        elif op is Opcode.CONSUME:
            operands = [str(r) for r in self.srcs]
        else:
            if self.dest is not None:
                operands.append(str(self.dest))
            operands.extend(str(r) for r in self.srcs)
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)

    def __str__(self) -> str:
        return self.render()


def make_nop() -> Instruction:
    return Instruction(Opcode.NOP)


def branch_direction_arcs(inst: Instruction) -> Iterable[str]:
    """Yield the arc kinds a control instruction can follow."""
    if inst.is_conditional_branch:
        yield "taken"
        yield "fallthrough"
    elif inst.opcode is Opcode.JUMP:
        yield "taken"
    elif inst.is_call:
        yield "fallthrough"
