"""Hot-spot records: what the hardware hands to software.

"Upon the detection of a hot spot, the BBB contains the set of hot spot
branches and their executed and taken counts" (paper section 3.1).
A :class:`HotSpotRecord` is the snapshot of that state; it is the *only*
profile information the region-identification step may consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Optional


@dataclass(frozen=True)
class BranchProfile:
    """Executed/taken counts of one static branch in one hot spot."""

    address: int
    executed: int
    taken: int

    def __post_init__(self) -> None:
        if not 0 <= self.taken <= self.executed:
            raise ValueError(
                f"inconsistent counts: taken={self.taken} executed={self.executed}"
            )

    @property
    def taken_fraction(self) -> float:
        """Fraction of executions that were taken (0.0 if never executed)."""
        if self.executed == 0:
            return 0.0
        return self.taken / self.executed

    def bias(self, threshold: float = 0.7) -> Optional[str]:
        """``"taken"`` / ``"not_taken"`` when one direction dominates.

        Returns ``None`` for unbiased branches.  The default threshold
        mirrors the paper's Multi-High boundary (>70 %).
        """
        fraction = self.taken_fraction
        if fraction >= threshold:
            return "taken"
        if fraction <= 1.0 - threshold:
            return "not_taken"
        return None


@dataclass
class HotSpotRecord:
    """One detected hot spot: the branch profiles captured in the BBB."""

    index: int
    detected_at_branch: int
    branches: Dict[int, BranchProfile] = field(default_factory=dict)

    @property
    def addresses(self) -> FrozenSet[int]:
        return frozenset(self.branches)

    def profile(self, address: int) -> Optional[BranchProfile]:
        return self.branches.get(address)

    def total_executed(self) -> int:
        return sum(b.executed for b in self.branches.values())

    def __len__(self) -> int:
        return len(self.branches)

    def __iter__(self) -> Iterator[BranchProfile]:
        return iter(self.branches.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"<HotSpotRecord #{self.index} at branch {self.detected_at_branch} "
            f"({len(self.branches)} branches)>"
        )
