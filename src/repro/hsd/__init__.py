"""Hot Spot Detector hardware model (paper section 3.1, Table 2)."""

from .bbb import BBBEntry, BranchBehaviorBuffer
from .config import HSDConfig, TABLE2_CONFIG
from .detector import DetectorStats, HotSpotDetector
from .faults import (
    ALL_FAULT_MODES,
    FaultInjector,
    FaultLog,
    FaultSpec,
    inject_faults,
)
from .filtering import (
    HotSpotFilter,
    SimilarityPolicy,
    bias_flips,
    filter_records,
    missing_fraction,
    same_hot_spot,
)
from .records import BranchProfile, HotSpotRecord
from .serialize import (
    ProfileDocument,
    ProfileFormatError,
    load_document,
    load_profile,
    make_provenance,
    records_from_json,
    records_to_json,
    save_profile,
)

__all__ = [
    "ALL_FAULT_MODES",
    "BBBEntry",
    "BranchBehaviorBuffer",
    "BranchProfile",
    "DetectorStats",
    "FaultInjector",
    "FaultLog",
    "FaultSpec",
    "inject_faults",
    "HSDConfig",
    "HotSpotDetector",
    "HotSpotFilter",
    "HotSpotRecord",
    "ProfileDocument",
    "ProfileFormatError",
    "SimilarityPolicy",
    "TABLE2_CONFIG",
    "load_document",
    "load_profile",
    "make_provenance",
    "records_from_json",
    "records_to_json",
    "save_profile",
    "bias_flips",
    "filter_records",
    "missing_fraction",
    "same_hot_spot",
]
