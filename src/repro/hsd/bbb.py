"""Branch Behavior Buffer: the HSD's profiling table (paper Fig. 2).

A set-associative table indexed by branch address.  Each entry holds
9-bit saturating executed/taken counters and a *candidate* flag that is
set once the executed count crosses the candidate threshold.

Two lossy behaviours called out in the paper are modeled faithfully:

* **Contention** — "contention for table entries may force a static
  branch to begin profiling later in the detection process ... and in
  the worst case, prevent the branch from being tracked at all."
  Replacement only evicts non-candidate entries (LRU among them); if
  every way of a set holds a candidate, new branches mapping there are
  simply not tracked.
* **Saturation** — "the hardware counters tracking each branch saturate
  when the execute count reaches its maximum value.  However, at
  saturation, the taken fraction for the branch is preserved": both
  counters freeze when the executed counter saturates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .config import HSDConfig
from .records import BranchProfile


@dataclass
class BBBEntry:
    """One BBB way: a tracked static branch."""

    address: int
    executed: int = 0
    taken: int = 0
    candidate: bool = False
    last_use: int = 0

    def update(self, taken: bool, config: HSDConfig) -> None:
        if self.executed < config.counter_max:
            self.executed += 1
            if taken:
                self.taken += 1
        # else: frozen at saturation, preserving the taken fraction.
        if self.executed >= config.candidate_threshold:
            self.candidate = True

    def profile(self) -> BranchProfile:
        return BranchProfile(self.address, self.executed, self.taken)


class BranchBehaviorBuffer:
    """The set-associative branch profiling table."""

    def __init__(self, config: Optional[HSDConfig] = None):
        self.config = config or HSDConfig()
        self._sets: List[Dict[int, BBBEntry]] = [
            {} for _ in range(self.config.bbb_sets)
        ]
        self._tick = 0
        self.misses_untracked = 0  # allocation failures due to contention

    # -- access --------------------------------------------------------
    def access(self, address: int, taken: bool) -> Optional[BBBEntry]:
        """Record one retirement of the branch at ``address``.

        Returns the entry tracking the branch, or ``None`` when the
        branch could not be tracked (all ways hold candidates).
        """
        self._tick += 1
        bbb_set = self._sets[self.config.set_index(address)]
        entry = bbb_set.get(address)
        if entry is None:
            entry = self._allocate(bbb_set, address)
            if entry is None:
                self.misses_untracked += 1
                return None
        entry.last_use = self._tick
        entry.update(taken, self.config)
        return entry

    def _allocate(self, bbb_set: Dict[int, BBBEntry], address: int) -> Optional[BBBEntry]:
        if len(bbb_set) < self.config.bbb_ways:
            entry = BBBEntry(address)
            bbb_set[address] = entry
            return entry
        victims = [e for e in bbb_set.values() if not e.candidate]
        if not victims:
            return None
        victim = min(victims, key=lambda e: e.last_use)
        del bbb_set[victim.address]
        entry = BBBEntry(address)
        bbb_set[address] = entry
        return entry

    # -- snapshot / maintenance ------------------------------------------
    def candidates(self) -> List[BBBEntry]:
        """All entries currently flagged as candidate branches."""
        result = []
        for bbb_set in self._sets:
            result.extend(e for e in bbb_set.values() if e.candidate)
        return result

    def entries(self) -> List[BBBEntry]:
        result = []
        for bbb_set in self._sets:
            result.extend(bbb_set.values())
        return result

    def snapshot_profiles(self) -> Dict[int, BranchProfile]:
        """Profiles of the candidate (hot spot) branches."""
        return {e.address: e.profile() for e in self.candidates()}

    def clear(self) -> None:
        """Flush the table (the HSD's clear timer fired, or a hot spot
        was recorded and monitoring restarts for the next phase)."""
        self._sets = [{} for _ in range(self.config.bbb_sets)]

    def current_tick(self) -> int:
        """Monotonic access counter (one per branch retirement)."""
        return self._tick

    def evict_stale(self, min_tick: int) -> int:
        """Drop entries not accessed since ``min_tick``.

        Called by the detector's refresh timer: branches that stopped
        retiring (the previous phase's working set) wash out of the
        table within one refresh interval instead of lingering as
        unevictable candidates and polluting the next phase's record.
        Returns the number of entries evicted.
        """
        evicted = 0
        for bbb_set in self._sets:
            stale = [a for a, e in bbb_set.items() if e.last_use < min_tick]
            for address in stale:
                del bbb_set[address]
            evicted += len(stale)
        return evicted

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, address: int) -> bool:
        return address in self._sets[self.config.set_index(address)]
