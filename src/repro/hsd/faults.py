"""Seeded fault injection for hot-spot profiles.

The paper's profile path is lossy by design: BBB entries are evicted by
set contention, counters saturate, snapshots are taken mid-phase, and
an offline profile can go stale against a relinked binary.  This module
reproduces those corruption modes *deliberately* so the pipeline's
tolerance can be measured (see
:mod:`repro.experiments.fault_campaign`):

========================  ==============================================
mode                      hardware / deployment analogue
========================  ==============================================
``drop_branches``         BBB set-conflict eviction loses branches
``saturate_counters``     9-bit execute/taken counters pin at max
``zero_counters``         snapshot races the counter clear interval
``stale_addresses``       profile captured against a different layout
``duplicate_records``     redundant detection slips past the filter
``truncate_records``      partial snapshot (detection mid-transition)
========================  ==============================================

All perturbation is driven by one ``random.Random(seed)`` stream, so a
campaign trial is exactly reproducible from ``(seed, modes, rates)``.
Injection never mutates its input: records are rebuilt fresh.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import HSDConfig, TABLE2_CONFIG
from .records import BranchProfile, HotSpotRecord

#: All supported corruption modes, in canonical order.
ALL_FAULT_MODES: Tuple[str, ...] = (
    "drop_branches",
    "saturate_counters",
    "zero_counters",
    "stale_addresses",
    "duplicate_records",
    "truncate_records",
)


@dataclass(frozen=True)
class FaultSpec:
    """Which corruption modes to apply, and how hard.

    ``rate`` is the per-branch (or per-record, for the record-level
    modes) probability that the perturbation applies.
    """

    modes: Tuple[str, ...] = ALL_FAULT_MODES
    rate: float = 0.25
    #: Counter value used by ``saturate_counters`` (defaults to the
    #: Table 2 9-bit saturation value).
    saturation_value: Optional[int] = None
    #: Fraction of a record's branches kept by ``truncate_records``.
    truncate_keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        unknown = [m for m in self.modes if m not in ALL_FAULT_MODES]
        if unknown:
            raise ValueError(
                f"unknown fault mode(s) {unknown!r}; "
                f"valid modes: {', '.join(ALL_FAULT_MODES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if not 0.0 <= self.truncate_keep_fraction <= 1.0:
            raise ValueError(
                "truncate_keep_fraction must be in [0, 1], "
                f"got {self.truncate_keep_fraction}"
            )


@dataclass
class FaultLog:
    """What one injection pass actually did to the stream."""

    branches_dropped: int = 0
    counters_saturated: int = 0
    counters_zeroed: int = 0
    addresses_staled: int = 0
    records_duplicated: int = 0
    records_truncated: int = 0

    def total(self) -> int:
        return (
            self.branches_dropped
            + self.counters_saturated
            + self.counters_zeroed
            + self.addresses_staled
            + self.records_duplicated
            + self.records_truncated
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "branches_dropped": self.branches_dropped,
            "counters_saturated": self.counters_saturated,
            "counters_zeroed": self.counters_zeroed,
            "addresses_staled": self.addresses_staled,
            "records_duplicated": self.records_duplicated,
            "records_truncated": self.records_truncated,
        }


class FaultInjector:
    """Perturbs a hot-spot record stream with seeded corruption.

    Example::

        injector = FaultInjector(seed=0, spec=FaultSpec(modes=("stale_addresses",)))
        dirty, log = injector.inject(profile.records)
    """

    def __init__(
        self,
        seed: int = 0,
        spec: FaultSpec = FaultSpec(),
        hsd_config: HSDConfig = TABLE2_CONFIG,
    ):
        self.seed = seed
        self.spec = spec
        self.hsd_config = hsd_config
        self._rng = random.Random(seed)

    # -- per-branch perturbations -------------------------------------
    def _perturb_profile(
        self, profile: BranchProfile, log: FaultLog
    ) -> Optional[BranchProfile]:
        """One branch through the enabled per-branch modes.

        Returns ``None`` when the branch is dropped (BBB eviction).
        """
        spec = self.spec
        rng = self._rng
        address = profile.address
        executed = profile.executed
        taken = profile.taken

        if "drop_branches" in spec.modes and rng.random() < spec.rate:
            log.branches_dropped += 1
            return None
        if "saturate_counters" in spec.modes and rng.random() < spec.rate:
            cap = (
                spec.saturation_value
                if spec.saturation_value is not None
                else self.hsd_config.counter_max
            )
            # Both counters pin at the cap: the branch looks fully
            # executed and (if it was ever taken) fully taken.
            executed = cap
            taken = cap if taken else 0
            log.counters_saturated += 1
        if "zero_counters" in spec.modes and rng.random() < spec.rate:
            executed = 0
            taken = 0
            log.counters_zeroed += 1
        if "stale_addresses" in spec.modes and rng.random() < spec.rate:
            # Slide the address by a few instruction slots — with high
            # probability it now points at a non-branch instruction (or
            # out of the image entirely), exactly what a stale profile
            # looks like after relinking.
            slots = rng.choice([-4, -3, -2, -1, 1, 2, 3, 4])
            address = max(0, address + slots * (1 << self.hsd_config.address_shift))
            log.addresses_staled += 1
        return BranchProfile(address=address, executed=executed, taken=taken)

    # -- per-record perturbations -------------------------------------
    def _perturb_record(
        self, record: HotSpotRecord, log: FaultLog
    ) -> HotSpotRecord:
        branches: Dict[int, BranchProfile] = {}
        for profile in sorted(record.branches.values(), key=lambda p: p.address):
            perturbed = self._perturb_profile(profile, log)
            if perturbed is not None:
                # Stale addresses may collide; last write wins, like a
                # real BBB snapshot keyed by address.
                branches[perturbed.address] = perturbed
        if (
            "truncate_records" in self.spec.modes
            and branches
            and self._rng.random() < self.spec.rate
        ):
            keep = max(1, int(len(branches) * self.spec.truncate_keep_fraction))
            kept_addresses = sorted(branches)[:keep]
            branches = {a: branches[a] for a in kept_addresses}
            log.records_truncated += 1
        return HotSpotRecord(
            index=record.index,
            detected_at_branch=record.detected_at_branch,
            branches=branches,
        )

    def inject(
        self, records: Iterable[HotSpotRecord]
    ) -> Tuple[List[HotSpotRecord], FaultLog]:
        """Perturbed copies of ``records`` plus a log of what changed."""
        log = FaultLog()
        dirty: List[HotSpotRecord] = []
        for record in records:
            perturbed = self._perturb_record(record, log)
            dirty.append(perturbed)
            if (
                "duplicate_records" in self.spec.modes
                and self._rng.random() < self.spec.rate
            ):
                dirty.append(
                    HotSpotRecord(
                        index=perturbed.index,
                        detected_at_branch=perturbed.detected_at_branch,
                        branches=dict(perturbed.branches),
                    )
                )
                log.records_duplicated += 1
        return dirty, log


def inject_faults(
    records: Sequence[HotSpotRecord],
    seed: int = 0,
    modes: Sequence[str] = ALL_FAULT_MODES,
    rate: float = 0.25,
    hsd_config: HSDConfig = TABLE2_CONFIG,
) -> Tuple[List[HotSpotRecord], FaultLog]:
    """One-shot convenience wrapper around :class:`FaultInjector`."""
    injector = FaultInjector(
        seed=seed,
        spec=FaultSpec(modes=tuple(modes), rate=rate),
        hsd_config=hsd_config,
    )
    return injector.inject(records)
