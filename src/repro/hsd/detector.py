"""The Hot Spot Detector: BBB + Hot Spot Detection Counter (paper Fig. 2).

The detector watches the retired-branch stream.  Per retiring branch:

1. the branch is looked up / allocated in the
   :class:`~repro.hsd.bbb.BranchBehaviorBuffer` and its counters update;
2. the Hot Spot Detection Counter (HDC) moves *toward* zero by
   ``hdc_candidate_step`` if the branch is a candidate, else *away* by
   ``hdc_noncandidate_step`` (saturating at its maximum);
3. when the HDC reaches zero a hot spot is detected: the candidate
   profiles are snapshotted into a :class:`~repro.hsd.records.HotSpotRecord`,
   the table is flushed, and monitoring restarts for the next phase;
4. a *refresh timer* re-arms the HDC every ``refresh_interval``
   branches so only sustained hot behaviour can reach zero, and a
   *clear timer* flushes a stale BBB after ``clear_interval`` branches
   without a detection.

Re-detections of the same phase are expected from the hardware; the
software-side :mod:`repro.hsd.filtering` removes them, as the paper
assumes ("we assume software filtering eliminates all redundant hot
spot detections").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .bbb import BBBEntry, BranchBehaviorBuffer
from .config import HSDConfig
from .records import HotSpotRecord


@dataclass
class DetectorStats:
    """Counters describing one profiling run."""

    branches_observed: int = 0
    detections: int = 0
    refreshes: int = 0
    clears: int = 0


class HotSpotDetector:
    """Hardware hot-spot detection over a retired-branch stream."""

    def __init__(self, config: Optional[HSDConfig] = None):
        self.config = config or HSDConfig()
        self.bbb = BranchBehaviorBuffer(self.config)
        self.hdc = self.config.hdc_max
        self.stats = DetectorStats()
        self._branches_since_refresh = 0
        self._branches_since_clear = 0
        self._tick_at_last_refresh = 0
        self._records: List[HotSpotRecord] = []
        # Memoized tuple view of _records; rebuilt only after a new
        # detection (the old property copied the list on every access).
        self._records_view: Tuple[HotSpotRecord, ...] = ()

    # -- the per-branch pipeline ------------------------------------
    def observe(self, address: int, taken: bool) -> Optional[HotSpotRecord]:
        """Feed one retired branch; returns a record upon detection."""
        self.stats.branches_observed += 1
        self._branches_since_refresh += 1
        self._branches_since_clear += 1

        entry = self.bbb.access(address, taken)
        is_candidate = entry is not None and entry.candidate

        if is_candidate:
            self.hdc = max(0, self.hdc - self.config.hdc_candidate_step)
        else:
            self.hdc = min(
                self.config.hdc_max, self.hdc + self.config.hdc_noncandidate_step
            )

        if self.hdc == 0:
            return self._detect()

        if self._branches_since_refresh >= self.config.refresh_interval:
            self._refresh()
        if self._branches_since_clear >= self.config.clear_interval:
            self._clear()
        return None

    def observe_stream(
        self, addresses: Sequence[int], takens: Sequence[bool]
    ) -> List[HotSpotRecord]:
        """Feed a chunk of retired branches; returns records detected.

        Semantically identical to calling :meth:`observe` per event (the
        equivalence is asserted in ``tests/test_compiled_engine.py``)
        but an order of magnitude cheaper per branch: the BBB access,
        counter update, and HDC walk are inlined with all configuration
        and table state held in locals, and the rare maintenance events
        (detection, refresh timer, clear timer) drop back to the
        reference methods.  The compiled trace engine feeds cached
        traces through this path chunk by chunk.
        """
        records: List[HotSpotRecord] = []
        config = self.config
        bbb = self.bbb
        shift = config.address_shift
        set_mask = config.bbb_sets - 1
        ways = config.bbb_ways
        counter_max = config.counter_max
        cand_thresh = config.candidate_threshold
        step_c = config.hdc_candidate_step
        step_n = config.hdc_noncandidate_step
        hdc_max = config.hdc_max
        refresh_interval = config.refresh_interval
        clear_interval = config.clear_interval

        sets = bbb._sets
        tick = bbb._tick
        hdc = self.hdc
        observed = self.stats.branches_observed
        since_refresh = self._branches_since_refresh
        since_clear = self._branches_since_clear

        for address, taken in zip(addresses, takens):
            observed += 1
            since_refresh += 1
            since_clear += 1
            tick += 1
            bbb_set = sets[(address >> shift) & set_mask]
            entry = bbb_set.get(address)
            if entry is None:
                if len(bbb_set) < ways:
                    entry = BBBEntry(address)
                    bbb_set[address] = entry
                else:
                    # LRU among non-candidates; ties keep the first, as
                    # min() does in BranchBehaviorBuffer._allocate.
                    victim = None
                    for way in bbb_set.values():
                        if not way.candidate and (
                            victim is None or way.last_use < victim.last_use
                        ):
                            victim = way
                    if victim is None:
                        bbb.misses_untracked += 1
                    else:
                        del bbb_set[victim.address]
                        entry = BBBEntry(address)
                        bbb_set[address] = entry
            if entry is not None:
                entry.last_use = tick
                executed = entry.executed
                if executed < counter_max:
                    entry.executed = executed = executed + 1
                    if taken:
                        entry.taken += 1
                if executed >= cand_thresh:
                    entry.candidate = True
                    hdc -= step_c
                    if hdc < 0:
                        hdc = 0
                else:
                    hdc += step_n
                    if hdc > hdc_max:
                        hdc = hdc_max
            else:
                hdc += step_n
                if hdc > hdc_max:
                    hdc = hdc_max

            if hdc == 0 or since_refresh >= refresh_interval \
                    or since_clear >= clear_interval:
                # Rare maintenance: sync state, reuse the reference
                # event methods, reload locals (they reset tables).
                bbb._tick = tick
                self.hdc = hdc
                self.stats.branches_observed = observed
                self._branches_since_refresh = since_refresh
                self._branches_since_clear = since_clear
                if hdc == 0:
                    records.append(self._detect())
                else:
                    if since_refresh >= refresh_interval:
                        self._refresh()
                    if self._branches_since_clear >= clear_interval:
                        self._clear()
                sets = bbb._sets
                tick = bbb._tick
                hdc = self.hdc
                since_refresh = self._branches_since_refresh
                since_clear = self._branches_since_clear

        bbb._tick = tick
        self.hdc = hdc
        self.stats.branches_observed = observed
        self._branches_since_refresh = since_refresh
        self._branches_since_clear = since_clear
        return records

    # -- events ----------------------------------------------------------
    def _detect(self) -> HotSpotRecord:
        record = HotSpotRecord(
            index=len(self._records),
            detected_at_branch=self.stats.branches_observed,
            branches=self.bbb.snapshot_profiles(),
        )
        self._records.append(record)
        self._records_view = tuple(self._records)
        self.stats.detections += 1
        # Restart monitoring for the next phase.
        self.bbb.clear()
        self.hdc = self.config.hdc_max
        self._branches_since_refresh = 0
        self._branches_since_clear = 0
        self._tick_at_last_refresh = self.bbb.current_tick()
        return record

    def _refresh(self) -> None:
        """Refresh timer: re-arm the HDC and wash out stale entries.

        Only sustained hotness can reach detection, and branches that
        stopped retiring during the last interval (the previous phase's
        working set) leave the table instead of polluting the next
        snapshot as frozen candidates.
        """
        self.hdc = self.config.hdc_max
        self._branches_since_refresh = 0
        self.bbb.evict_stale(self._tick_at_last_refresh)
        self._tick_at_last_refresh = self.bbb.current_tick()
        self.stats.refreshes += 1

    def _clear(self) -> None:
        """Clear timer: flush a BBB that produced no detection."""
        self.bbb.clear()
        self.hdc = self.config.hdc_max
        self._branches_since_clear = 0
        self._branches_since_refresh = 0
        self._tick_at_last_refresh = self.bbb.current_tick()
        self.stats.clears += 1

    # -- results -----------------------------------------------------------
    @property
    def records(self) -> Tuple[HotSpotRecord, ...]:
        """All raw (unfiltered) hot spot records detected so far.

        An immutable view memoized per detection — repeated accesses no
        longer copy the whole history each time.
        """
        return self._records_view
