"""The Hot Spot Detector: BBB + Hot Spot Detection Counter (paper Fig. 2).

The detector watches the retired-branch stream.  Per retiring branch:

1. the branch is looked up / allocated in the
   :class:`~repro.hsd.bbb.BranchBehaviorBuffer` and its counters update;
2. the Hot Spot Detection Counter (HDC) moves *toward* zero by
   ``hdc_candidate_step`` if the branch is a candidate, else *away* by
   ``hdc_noncandidate_step`` (saturating at its maximum);
3. when the HDC reaches zero a hot spot is detected: the candidate
   profiles are snapshotted into a :class:`~repro.hsd.records.HotSpotRecord`,
   the table is flushed, and monitoring restarts for the next phase;
4. a *refresh timer* re-arms the HDC every ``refresh_interval``
   branches so only sustained hot behaviour can reach zero, and a
   *clear timer* flushes a stale BBB after ``clear_interval`` branches
   without a detection.

Re-detections of the same phase are expected from the hardware; the
software-side :mod:`repro.hsd.filtering` removes them, as the paper
assumes ("we assume software filtering eliminates all redundant hot
spot detections").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .bbb import BranchBehaviorBuffer
from .config import HSDConfig
from .records import HotSpotRecord


@dataclass
class DetectorStats:
    """Counters describing one profiling run."""

    branches_observed: int = 0
    detections: int = 0
    refreshes: int = 0
    clears: int = 0


class HotSpotDetector:
    """Hardware hot-spot detection over a retired-branch stream."""

    def __init__(self, config: Optional[HSDConfig] = None):
        self.config = config or HSDConfig()
        self.bbb = BranchBehaviorBuffer(self.config)
        self.hdc = self.config.hdc_max
        self.stats = DetectorStats()
        self._branches_since_refresh = 0
        self._branches_since_clear = 0
        self._tick_at_last_refresh = 0
        self._records: List[HotSpotRecord] = []

    # -- the per-branch pipeline ------------------------------------
    def observe(self, address: int, taken: bool) -> Optional[HotSpotRecord]:
        """Feed one retired branch; returns a record upon detection."""
        self.stats.branches_observed += 1
        self._branches_since_refresh += 1
        self._branches_since_clear += 1

        entry = self.bbb.access(address, taken)
        is_candidate = entry is not None and entry.candidate

        if is_candidate:
            self.hdc = max(0, self.hdc - self.config.hdc_candidate_step)
        else:
            self.hdc = min(
                self.config.hdc_max, self.hdc + self.config.hdc_noncandidate_step
            )

        if self.hdc == 0:
            return self._detect()

        if self._branches_since_refresh >= self.config.refresh_interval:
            self._refresh()
        if self._branches_since_clear >= self.config.clear_interval:
            self._clear()
        return None

    # -- events ----------------------------------------------------------
    def _detect(self) -> HotSpotRecord:
        record = HotSpotRecord(
            index=len(self._records),
            detected_at_branch=self.stats.branches_observed,
            branches=self.bbb.snapshot_profiles(),
        )
        self._records.append(record)
        self.stats.detections += 1
        # Restart monitoring for the next phase.
        self.bbb.clear()
        self.hdc = self.config.hdc_max
        self._branches_since_refresh = 0
        self._branches_since_clear = 0
        self._tick_at_last_refresh = self.bbb.current_tick()
        return record

    def _refresh(self) -> None:
        """Refresh timer: re-arm the HDC and wash out stale entries.

        Only sustained hotness can reach detection, and branches that
        stopped retiring during the last interval (the previous phase's
        working set) leave the table instead of polluting the next
        snapshot as frozen candidates.
        """
        self.hdc = self.config.hdc_max
        self._branches_since_refresh = 0
        self.bbb.evict_stale(self._tick_at_last_refresh)
        self._tick_at_last_refresh = self.bbb.current_tick()
        self.stats.refreshes += 1

    def _clear(self) -> None:
        """Clear timer: flush a BBB that produced no detection."""
        self.bbb.clear()
        self.hdc = self.config.hdc_max
        self._branches_since_clear = 0
        self._branches_since_refresh = 0
        self._tick_at_last_refresh = self.bbb.current_tick()
        self.stats.clears += 1

    # -- results -----------------------------------------------------------
    @property
    def records(self) -> List[HotSpotRecord]:
        """All raw (unfiltered) hot spot records detected so far."""
        return list(self._records)
