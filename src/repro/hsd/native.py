"""Native fast path for feeding a whole trace to the Hot Spot Detector.

:meth:`~repro.hsd.detector.HotSpotDetector.observe_stream` already
inlines the per-event work, but at fleet scale its Python loop is the
second-largest cost after the engine itself.  This module drives the
``hsd_stream`` C port compiled by :mod:`repro.engine.native` — the BBB
lowered to flat per-slot arrays over dense address ids — and leaves the
detector in *exactly* the state the Python path would: same records
(including snapshot dict insertion order, which serialized documents
preserve), same stats, same residual BBB contents, same timer values.

:func:`try_consume` returns ``None`` whenever the fast path cannot
guarantee that — no compiled kernel, a detector that has already
observed events, oversized geometry — and the caller falls back to
``observe_stream``.  ``REPRO_NATIVE=off`` disables it globally.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.engine.native import native_kernel
from repro.hsd.bbb import BBBEntry
from repro.hsd.detector import HotSpotDetector
from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.obs import inc

#: Upper bound on per-run snapshot buffer entries before we prefer the
#: Python path (tiny custom HDC configs can detect every few events).
_SNAP_BUDGET = 4_000_000


def _fresh(detector: HotSpotDetector) -> bool:
    bbb = detector.bbb
    return (
        detector.stats.branches_observed == 0
        and bbb._tick == 0
        and not detector._records
        and detector.hdc == detector.config.hdc_max
        and detector._branches_since_refresh == 0
        and detector._branches_since_clear == 0
        and detector._tick_at_last_refresh == 0
        and bbb.occupancy() == 0
    )


def try_consume(
    detector: HotSpotDetector,
    address_of: Dict[int, int],
    uids: np.ndarray,
    takens: np.ndarray,
) -> Optional[List[HotSpotRecord]]:
    """Feed ``(uids, takens)`` through the C detector port.

    Returns the detected records (already appended to the detector)
    or ``None`` when the caller must use the Python path.  On ``None``
    the detector is untouched — all kernel state lives in scratch
    arrays until the final commit.
    """
    kernel = native_kernel()
    if kernel is None or not _fresh(detector):
        return None
    config = detector.config
    if config.bbb_ways > 64:
        return None
    n = int(len(uids))

    uid_arr = np.fromiter(
        address_of.keys(), dtype=np.int64, count=len(address_of)
    )
    addr_arr = np.fromiter(
        address_of.values(), dtype=np.int64, count=len(address_of)
    )
    order = np.argsort(uid_arr, kind="stable")
    sorted_uids = uid_arr[order]
    sorted_addr = addr_arr[order]

    ev_uids = np.ascontiguousarray(uids, dtype=np.int64)
    ev_id64 = np.searchsorted(sorted_uids, ev_uids)
    if n and (
        int(ev_id64.max(initial=0)) >= len(sorted_uids)
        or not np.array_equal(sorted_uids[ev_id64], ev_uids)
    ):
        return None  # a uid without an address: let the dict KeyError
    ev_id = np.ascontiguousarray(ev_id64, dtype=np.int32)
    ev_taken = np.ascontiguousarray(takens, dtype=np.uint8)

    set_of = np.ascontiguousarray(
        (sorted_addr >> config.address_shift) & (config.bbb_sets - 1),
        dtype=np.int32,
    )

    # A detection needs the HDC walked from hdc_max to 0 after the last
    # maintenance reset: at least ceil(hdc_max / candidate_step) events.
    min_spacing = max(
        1, -(-config.hdc_max // config.hdc_candidate_step)
    )
    det_cap = n // min_spacing + 4
    snap_cap = det_cap * config.bbb_entries
    if snap_cap > _SNAP_BUDGET:
        return None

    nslots = config.bbb_entries
    slot_addr = np.full(nslots, -1, dtype=np.int32)
    slot_exec = np.zeros(nslots, dtype=np.int32)
    slot_taken = np.zeros(nslots, dtype=np.int32)
    slot_cand = np.zeros(nslots, dtype=np.uint8)
    slot_last = np.zeros(nslots, dtype=np.int64)
    slot_seq = np.zeros(nslots, dtype=np.int64)
    det_at = np.zeros(det_cap, dtype=np.int64)
    det_size = np.zeros(det_cap, dtype=np.int32)
    snap_id = np.zeros(snap_cap, dtype=np.int32)
    snap_exec = np.zeros(snap_cap, dtype=np.int32)
    snap_taken = np.zeros(snap_cap, dtype=np.int32)
    out = np.zeros(12, dtype=np.int64)

    code = kernel.hsd_stream(
        ev_id, ev_taken, n,
        set_of,
        config.bbb_sets, config.bbb_ways,
        config.counter_max, config.candidate_threshold,
        config.hdc_candidate_step, config.hdc_noncandidate_step,
        config.hdc_max,
        config.refresh_interval, config.clear_interval,
        slot_addr, slot_exec, slot_taken, slot_cand, slot_last, slot_seq,
        det_at, det_size, det_cap,
        snap_id, snap_exec, snap_taken, snap_cap,
        out,
    )
    if code != 0:
        return None

    # -- commit: records ---------------------------------------------
    ndet = int(out[8])
    records: List[HotSpotRecord] = []
    pos = 0
    for k in range(ndet):
        size = int(det_size[k])
        branches: Dict[int, BranchProfile] = {}
        for s in range(pos, pos + size):
            address = int(sorted_addr[snap_id[s]])
            branches[address] = BranchProfile(
                address, int(snap_exec[s]), int(snap_taken[s])
            )
        pos += size
        records.append(HotSpotRecord(
            index=len(detector._records) + k,
            detected_at_branch=int(det_at[k]),
            branches=branches,
        ))

    # -- commit: detector state (exactly what observe_stream leaves) --
    stats = detector.stats
    stats.branches_observed += n
    stats.detections += ndet
    stats.refreshes += int(out[6])
    stats.clears += int(out[7])
    detector.hdc = int(out[0])
    detector._branches_since_refresh = int(out[1])
    detector._branches_since_clear = int(out[2])
    detector._tick_at_last_refresh = int(out[4])
    detector._records.extend(records)
    detector._records_view = tuple(detector._records)

    bbb = detector.bbb
    bbb._tick = int(out[3])
    bbb.misses_untracked += int(out[5])
    sets: List[Dict[int, BBBEntry]] = [{} for _ in range(config.bbb_sets)]
    live = np.nonzero(slot_addr >= 0)[0]
    # Rebuild each set's dict in table insertion order (alloc sequence).
    for s in sorted(live.tolist(), key=lambda s: int(slot_seq[s])):
        address = int(sorted_addr[slot_addr[s]])
        sets[s // config.bbb_ways][address] = BBBEntry(
            address=address,
            executed=int(slot_exec[s]),
            taken=int(slot_taken[s]),
            candidate=bool(slot_cand[s]),
            last_use=int(slot_last[s]),
        )
    bbb._sets = sets

    inc("hsd.native.events", n)
    inc("hsd.native.detections", ndet)
    return records


__all__ = ["try_consume"]
