"""Hot Spot Detector configuration (paper Table 2).

The HSD internals follow Merten et al. [17] as summarized in the
paper's section 3.1.  The two counter steps are named after Table 2's
"Hot spot detection cntr inc/dec" rows: a *candidate* branch moves the
detection counter **toward** zero by ``hdc_candidate_step`` (Table 2's
"inc 2") and a non-candidate moves it **away** by
``hdc_noncandidate_step`` ("dec 1"), so a hot spot is detected only
while candidate branches make up more than

    hdc_noncandidate_step / (hdc_candidate_step + hdc_noncandidate_step)

of the retiring-branch stream — 1/3 with the Table 2 values — and,
because the refresh timer re-arms the counter every
``refresh_interval`` branches, detection additionally requires the
excess to accumulate to the full counter range within one refresh
window (a sustained candidate fraction of about 2/3 at the Table 2
values).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HSDConfig:
    """All Hot Spot Detector parameters, defaulted to paper Table 2."""

    bbb_sets: int = 512
    bbb_ways: int = 4
    candidate_threshold: int = 16
    counter_bits: int = 9
    hdc_bits: int = 13
    hdc_candidate_step: int = 2
    hdc_noncandidate_step: int = 1
    refresh_interval: int = 8192
    clear_interval: int = 65526
    #: Branch instructions are 8 bytes in our ISA; the BBB set index is
    #: taken from the address bits just above the alignment bits.
    address_shift: int = 3

    def __post_init__(self) -> None:
        if self.bbb_sets <= 0 or self.bbb_sets & (self.bbb_sets - 1):
            raise ValueError("bbb_sets must be a positive power of two")
        if self.bbb_ways <= 0:
            raise ValueError("bbb_ways must be positive")
        if self.counter_bits <= 0 or self.hdc_bits <= 0:
            raise ValueError("counter widths must be positive")
        if self.hdc_candidate_step <= 0 or self.hdc_noncandidate_step < 0:
            raise ValueError("HDC steps must be positive / non-negative")

    @property
    def counter_max(self) -> int:
        """Saturation value of the 9-bit execute/taken counters."""
        return (1 << self.counter_bits) - 1

    @property
    def hdc_max(self) -> int:
        """Initial (armed) value of the hot spot detection counter."""
        return (1 << self.hdc_bits) - 1

    @property
    def bbb_entries(self) -> int:
        return self.bbb_sets * self.bbb_ways

    def set_index(self, address: int) -> int:
        return (address >> self.address_shift) & (self.bbb_sets - 1)


#: Configuration used throughout the paper's evaluation (Table 2).
TABLE2_CONFIG = HSDConfig()
