"""Software filtering of redundant hot-spot detections.

Paper section 3.1: "In determining the similarity between two hot
spots, two criteria are used.  First, given a hot spot A and hot spot
B, if 30% or more of A's branches are missing from B (or vice versa)
then A and B are different hot spots.  Second, if a single biased
branch that is common to both A and B has a different bias (taken vs.
not-taken) between A and B, then A and B are different hot spots."

The filter keeps the history of every accepted record ("we assume
software filtering eliminates all redundant hot spot detections") and
drops any new detection similar to one already recorded.  The
thresholds are configurable so the paper's remark that "the threshold
of varying biased branches could be increased to more than one" can be
explored as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from .records import HotSpotRecord


@dataclass(frozen=True)
class SimilarityPolicy:
    """Thresholds for deciding whether two hot spots are "the same"."""

    #: Two hot spots differ if >= this fraction of either's branches is
    #: missing from the other (paper: 30 %).
    missing_fraction: float = 0.30
    #: Taken-fraction threshold that marks a branch as biased.
    bias_threshold: float = 0.7
    #: Number of common biased branches that must flip direction before
    #: the hot spots are considered different (paper: 1).
    max_bias_flips: int = 1
    #: Refresh a stored record from later redundant detections of the
    #: same phase.  This models the BBB-history enhancement of [4] the
    #: paper leans on ("records a phase only when it is different than
    #: the previous phase"): the profile that survives for a phase is
    #: a late, fully saturated snapshot rather than the first —
    #: least-saturated — one.  A snapshot is only committed once a
    #: *subsequent* same-phase detection confirms it, so the final
    #: snapshot of a phase (which may straddle the transition into the
    #: next phase and mix both working sets) never pollutes the record.
    refresh_on_redundant: bool = True


def missing_fraction(a: HotSpotRecord, b: HotSpotRecord) -> float:
    """Largest fraction of one record's branches absent from the other."""
    if not a.branches or not b.branches:
        return 1.0 if a.branches or b.branches else 0.0
    missing_from_b = len(a.addresses - b.addresses) / len(a.addresses)
    missing_from_a = len(b.addresses - a.addresses) / len(b.addresses)
    return max(missing_from_b, missing_from_a)


def bias_flips(a: HotSpotRecord, b: HotSpotRecord, threshold: float = 0.7) -> int:
    """Common branches biased in both records but in opposite directions."""
    flips = 0
    for address in a.addresses & b.addresses:
        bias_a = a.branches[address].bias(threshold)
        bias_b = b.branches[address].bias(threshold)
        if bias_a is not None and bias_b is not None and bias_a != bias_b:
            flips += 1
    return flips


def same_hot_spot(
    a: HotSpotRecord, b: HotSpotRecord, policy: SimilarityPolicy = SimilarityPolicy()
) -> bool:
    """Apply the paper's two similarity criteria."""
    if missing_fraction(a, b) >= policy.missing_fraction:
        return False
    if bias_flips(a, b, policy.bias_threshold) >= policy.max_bias_flips:
        return False
    return True


class HotSpotFilter:
    """Stateful filter over a stream of detections."""

    def __init__(self, policy: SimilarityPolicy = SimilarityPolicy()):
        self.policy = policy
        self.accepted: List[HotSpotRecord] = []
        self.rejected_count = 0
        # index into `accepted` -> snapshot awaiting confirmation
        self._pending: dict = {}

    def accept(self, record: HotSpotRecord) -> bool:
        """True (and remembered) iff the record is a new, unique phase."""
        if not record.branches:
            self.rejected_count += 1
            return False
        for position, prior in enumerate(self.accepted):
            if same_hot_spot(record, prior, self.policy):
                self.rejected_count += 1
                if self.policy.refresh_on_redundant:
                    # The previous redundant snapshot is now confirmed
                    # (another same-phase detection followed it): commit
                    # it, and stage this one.
                    pending = self._pending.get(position)
                    if (
                        pending is not None
                        and sum(p.executed for p in pending.values())
                        >= prior.total_executed()
                    ):
                        prior.branches = pending
                    self._pending[position] = dict(record.branches)
                return False
        # A new phase: any staged snapshots were the final (possibly
        # transition-straddling) windows of their phases — discard them.
        self._pending.clear()
        self.accepted.append(record)
        return True


def filter_records(
    records: Iterable[HotSpotRecord], policy: SimilarityPolicy = SimilarityPolicy()
) -> List[HotSpotRecord]:
    """Run a :class:`HotSpotFilter` over a finished detection list."""
    hs_filter = HotSpotFilter(policy)
    for record in records:
        hs_filter.accept(record)
    return hs_filter.accepted
