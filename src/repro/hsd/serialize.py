"""Hot-spot profile persistence.

Post-link optimization is offline: the profiling run happens in the
end-user environment and the optimizer consumes the recorded hot spots
later ("the profiled program runs to completion before any of the
phases are further processed by the software", paper section 3).  This
module serializes the filtered phase records to a small, versioned JSON
document so a profile can be captured once and re-optimized many times.

Format v2 adds an embedded provenance stamp under ``meta.provenance``
(run id, behavior seed, staleness epoch) so the fleet aggregation
service (:mod:`repro.service`) can weigh and age profiles collected
from many client runs.  v1 documents still load — they simply carry no
provenance and are treated as epoch 0.  Mirroring the trace-cache v2
stamp, parse failures are *typed*: every malformed document raises
:class:`ProfileFormatError`, a :class:`~repro.errors.ProfileError`, so
ingest loops quarantine bad profiles exactly like every other
subsystem error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import ProfileError

from .records import BranchProfile, HotSpotRecord

FORMAT_NAME = "vacuum-packing-profile"
#: Version written by :func:`records_to_dict`.
FORMAT_VERSION = 2
#: Versions :func:`document_from_dict` can still read.
SUPPORTED_VERSIONS = (1, 2)

#: Fields a provenance stamp must carry to be usable by the service.
PROVENANCE_FIELDS = ("run_id", "seed", "epoch")


#: Validation stages a profile document passes through, in order.
#: ``ProfileFormatError.stage`` names the first one that failed, so
#: quarantine metrics can attribute *why* documents are rejected:
#: ``parse`` (not JSON / not an object), ``schema`` (format name,
#: version, records list, meta shape), ``records`` (a malformed record
#: entry), ``provenance`` (a bad v2 provenance stamp).
VALIDATION_STAGES = ("parse", "schema", "records", "provenance")


class ProfileFormatError(ProfileError):
    """Raised when a profile document cannot be parsed.

    A :class:`~repro.errors.ProfileError`, so the packer quarantine
    loop and the service ingest loop both catch it as a typed,
    per-profile failure instead of crashing the run.  ``stage`` names
    the validation stage that failed (one of
    :data:`VALIDATION_STAGES`), so ingest metrics attribute causes.
    """

    default_hint = (
        "the profile document is corrupt or from an incompatible "
        "writer; re-capture the client profile or drop it from the "
        "ingest set"
    )

    def __init__(self, message: str, *, stage: str = "parse", **kwargs):
        super().__init__(message, **kwargs)
        self.stage = stage


def make_provenance(
    run_id: str, seed: Optional[int], epoch: int, **extra
) -> Dict:
    """A v2 provenance stamp for ``meta['provenance']``."""
    stamp = {"run_id": str(run_id), "seed": seed, "epoch": int(epoch)}
    stamp.update(extra)
    return stamp


@dataclass
class ProfileDocument:
    """A parsed profile document: records plus their provenance."""

    records: List[HotSpotRecord]
    meta: Dict = field(default_factory=dict)
    version: int = FORMAT_VERSION

    @property
    def provenance(self) -> Dict:
        """The embedded provenance stamp ({} for v1 documents)."""
        return self.meta.get("provenance", {})

    @property
    def run_id(self) -> str:
        return str(self.provenance.get("run_id", ""))

    @property
    def seed(self) -> Optional[int]:
        return self.provenance.get("seed")

    @property
    def epoch(self) -> int:
        return int(self.provenance.get("epoch", 0))


# ---------------------------------------------------------------------------
# record <-> entry
# ---------------------------------------------------------------------------

def record_to_entry(record: HotSpotRecord) -> Dict:
    """Serializable representation of one phase record."""
    return {
        "index": record.index,
        "detected_at_branch": record.detected_at_branch,
        "branches": [
            {
                "address": profile.address,
                "executed": profile.executed,
                "taken": profile.taken,
            }
            for profile in sorted(
                record.branches.values(), key=lambda p: p.address
            )
        ],
    }


def record_from_entry(entry: Dict) -> HotSpotRecord:
    """Parse one entry produced by :func:`record_to_entry`."""
    try:
        branches = {
            b["address"]: BranchProfile(b["address"], b["executed"], b["taken"])
            for b in entry["branches"]
        }
        return HotSpotRecord(
            index=entry["index"],
            detected_at_branch=entry["detected_at_branch"],
            branches=branches,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProfileFormatError(
            f"malformed record entry: {exc}", stage="records"
        ) from exc


# ---------------------------------------------------------------------------
# documents
# ---------------------------------------------------------------------------

def records_to_dict(
    records: Iterable[HotSpotRecord], meta: Optional[Dict] = None
) -> Dict:
    """Serializable representation of a list of phase records."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "meta": dict(meta or {}),
        "records": [record_to_entry(record) for record in records],
    }


def document_from_dict(document: Dict) -> ProfileDocument:
    """Parse a document produced by :func:`records_to_dict`.

    Accepts every version in :data:`SUPPORTED_VERSIONS`; anything else
    — wrong format name, future version, missing or non-list
    ``records``, a malformed provenance stamp — raises
    :class:`ProfileFormatError`.
    """
    if document.get("format") != FORMAT_NAME:
        raise ProfileFormatError(
            f"not a {FORMAT_NAME} document: format={document.get('format')!r}",
            stage="schema",
        )
    version = document.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ProfileFormatError(
            f"unsupported profile version {version!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})",
            stage="schema",
        )
    entries = document.get("records")
    if not isinstance(entries, list):
        raise ProfileFormatError(
            "profile document is missing its 'records' list",
            stage="schema",
        )
    meta = document.get("meta") or {}
    if not isinstance(meta, dict):
        raise ProfileFormatError(
            "profile 'meta' must be a JSON object", stage="schema"
        )
    provenance = meta.get("provenance")
    if provenance is not None:
        if not isinstance(provenance, dict):
            raise ProfileFormatError(
                "'meta.provenance' must be an object", stage="provenance"
            )
        missing = [f for f in PROVENANCE_FIELDS if f not in provenance]
        if missing:
            raise ProfileFormatError(
                f"provenance stamp is missing fields: {', '.join(missing)}",
                stage="provenance",
            )
        epoch = provenance.get("epoch")
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise ProfileFormatError(
                f"provenance epoch must be an integer, got {epoch!r}",
                stage="provenance",
            )
        if not isinstance(provenance.get("run_id"), str):
            raise ProfileFormatError(
                "provenance run_id must be a string",
                stage="provenance",
            )
    return ProfileDocument(
        records=[record_from_entry(entry) for entry in entries],
        meta=meta,
        version=version,
    )


def records_from_dict(document: Dict) -> List[HotSpotRecord]:
    """Parse a document, returning just the records (meta dropped)."""
    return document_from_dict(document).records


def records_to_json(
    records: Iterable[HotSpotRecord], meta: Optional[Dict] = None
) -> str:
    return json.dumps(records_to_dict(records, meta), indent=2, sort_keys=True)


def document_from_json(text: str) -> ProfileDocument:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProfileFormatError(
            f"invalid JSON: {exc}", stage="parse"
        ) from exc
    if not isinstance(document, dict):
        raise ProfileFormatError(
            "profile document must be a JSON object", stage="parse"
        )
    return document_from_dict(document)


def records_from_json(text: str) -> List[HotSpotRecord]:
    return document_from_json(text).records


def save_profile(
    path: Union[str, Path],
    records: Iterable[HotSpotRecord],
    meta: Optional[Dict] = None,
) -> None:
    """Write a profile document to ``path``."""
    Path(path).write_text(records_to_json(records, meta))


def load_profile(path: Union[str, Path]) -> List[HotSpotRecord]:
    """Read a profile document from ``path``."""
    return records_from_json(Path(path).read_text())


def load_document(path: Union[str, Path]) -> ProfileDocument:
    """Read a profile document, keeping its meta/provenance."""
    return document_from_json(Path(path).read_text())
