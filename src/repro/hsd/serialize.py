"""Hot-spot profile persistence.

Post-link optimization is offline: the profiling run happens in the
end-user environment and the optimizer consumes the recorded hot spots
later ("the profiled program runs to completion before any of the
phases are further processed by the software", paper section 3).  This
module serializes the filtered phase records to a small, versioned JSON
document so a profile can be captured once and re-optimized many times.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .records import BranchProfile, HotSpotRecord

FORMAT_NAME = "vacuum-packing-profile"
FORMAT_VERSION = 1


class ProfileFormatError(Exception):
    """Raised when a profile document cannot be parsed."""


def records_to_dict(
    records: Iterable[HotSpotRecord], meta: Optional[Dict] = None
) -> Dict:
    """Serializable representation of a list of phase records."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "meta": dict(meta or {}),
        "records": [
            {
                "index": record.index,
                "detected_at_branch": record.detected_at_branch,
                "branches": [
                    {
                        "address": profile.address,
                        "executed": profile.executed,
                        "taken": profile.taken,
                    }
                    for profile in sorted(
                        record.branches.values(), key=lambda p: p.address
                    )
                ],
            }
            for record in records
        ],
    }


def records_from_dict(document: Dict) -> List[HotSpotRecord]:
    """Parse a document produced by :func:`records_to_dict`."""
    if document.get("format") != FORMAT_NAME:
        raise ProfileFormatError(
            f"not a {FORMAT_NAME} document: format={document.get('format')!r}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ProfileFormatError(
            f"unsupported profile version {document.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    records = []
    for entry in document.get("records", []):
        try:
            branches = {
                b["address"]: BranchProfile(
                    b["address"], b["executed"], b["taken"]
                )
                for b in entry["branches"]
            }
            records.append(
                HotSpotRecord(
                    index=entry["index"],
                    detected_at_branch=entry["detected_at_branch"],
                    branches=branches,
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileFormatError(f"malformed record entry: {exc}") from exc
    return records


def records_to_json(
    records: Iterable[HotSpotRecord], meta: Optional[Dict] = None
) -> str:
    return json.dumps(records_to_dict(records, meta), indent=2, sort_keys=True)


def records_from_json(text: str) -> List[HotSpotRecord]:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProfileFormatError(f"invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ProfileFormatError("profile document must be a JSON object")
    return records_from_dict(document)


def save_profile(
    path: Union[str, Path],
    records: Iterable[HotSpotRecord],
    meta: Optional[Dict] = None,
) -> None:
    """Write a profile document to ``path``."""
    Path(path).write_text(records_to_json(records, meta))


def load_profile(path: Union[str, Path]) -> List[HotSpotRecord]:
    """Read a profile document from ``path``."""
    return records_from_json(Path(path).read_text())
