"""Natural-loop detection.

The paper's regions frequently wrap an outer loop ("a modestly sized
code base that represents a significant portion of execution, often an
outer loop", section 2); the optimizer's layout pass and the workload
suite's statistics both use the loop nest computed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.program.cfg import Arc, ControlFlowGraph

from .dominators import DominatorTree


@dataclass
class NaturalLoop:
    """One natural loop: header, back edges, and member blocks."""

    header: str
    body: FrozenSet[str]
    back_edges: List[Arc] = field(default_factory=list)
    parent: Optional["NaturalLoop"] = None

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains(self, label: str) -> bool:
        return label in self.body

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<Loop header={self.header} blocks={len(self.body)} depth={self.depth}>"


class LoopNest:
    """All natural loops of one function, nested by containment."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self.dom = DominatorTree(cfg)
        self.loops: List[NaturalLoop] = self._find_loops()
        self._nest()

    def _find_loops(self) -> List[NaturalLoop]:
        by_header: Dict[str, NaturalLoop] = {}
        for arc in self.cfg.arcs:
            if not self.dom.dominates(arc.dst, arc.src):
                continue
            body = self._loop_body(arc)
            loop = by_header.get(arc.dst)
            if loop is None:
                by_header[arc.dst] = NaturalLoop(arc.dst, body, [arc])
            else:
                by_header[arc.dst] = NaturalLoop(
                    arc.dst, loop.body | body, loop.back_edges + [arc]
                )
        return sorted(by_header.values(), key=lambda l: len(l.body))

    def _loop_body(self, back_edge: Arc) -> FrozenSet[str]:
        # Standard natural-loop construction: walk predecessors from the
        # back edge's source, never expanding past the header.
        body = {back_edge.dst}
        stack = []
        if back_edge.src != back_edge.dst:
            body.add(back_edge.src)
            stack.append(back_edge.src)
        while stack:
            label = stack.pop()
            for arc in self.cfg.predecessors(label):
                if arc.src not in body:
                    body.add(arc.src)
                    stack.append(arc.src)
        return frozenset(body)

    def _nest(self) -> None:
        # loops are sorted smallest first; the parent of a loop is the
        # smallest strictly-larger loop containing its header.
        for i, loop in enumerate(self.loops):
            for candidate in self.loops[i + 1 :]:
                if loop.header in candidate.body and candidate.body != loop.body:
                    loop.parent = candidate
                    break

    # -- queries --------------------------------------------------------
    def innermost_loop(self, label: str) -> Optional[NaturalLoop]:
        for loop in self.loops:  # smallest first
            if label in loop.body:
                return loop
        return None

    def loop_depth(self, label: str) -> int:
        loop = self.innermost_loop(label)
        return loop.depth if loop else 0

    def headers(self) -> List[str]:
        return [loop.header for loop in self.loops]

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)
