"""Reaching definitions.

A forward may-analysis over one function's CFG: which instruction
(identified by uid) may have produced the value of a register at a
program point.  Built on the generic worklist solver; used by tooling
that wants def-use chains (e.g. explaining why the sinking or DCE pass
did or did not fire) and exercised directly by the test suite.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.analysis.dataflow import solve_forward
from repro.analysis.liveness import instruction_defs
from repro.isa.registers import Reg
from repro.program.cfg import ControlFlowGraph

#: One definition: (register, uid of the defining instruction).
Definition = Tuple[Reg, int]


class ReachingDefinitions:
    """Forward reaching-definitions over a CFG."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        gen: Dict[str, FrozenSet[Definition]] = {}
        kill_regs: Dict[str, FrozenSet[Reg]] = {}
        all_defs: List[Definition] = []

        for block in cfg.blocks:
            block_gen: Dict[Reg, int] = {}
            for inst in block.instructions:
                for reg in instruction_defs(inst):
                    block_gen[reg] = inst.uid
            gen[block.label] = frozenset(block_gen.items())
            kill_regs[block.label] = frozenset(block_gen)
            all_defs.extend(block_gen.items())
        self._all_defs = frozenset(all_defs)

        def transfer(label: str, flowing: FrozenSet[Definition]):
            killed = kill_regs[label]
            survivors = frozenset(
                d for d in flowing if d[0] not in killed
            )
            return gen[label] | survivors

        self._result = solve_forward(cfg, transfer, boundary=frozenset(), may=True)

    # -- queries ------------------------------------------------------
    def reaching_in(self, label: str) -> FrozenSet[Definition]:
        """Definitions that may reach the top of ``label``."""
        return self._result.in_sets[label]

    def reaching_out(self, label: str) -> FrozenSet[Definition]:
        return self._result.out_sets[label]

    def definers_of(self, label: str, reg: Reg) -> FrozenSet[int]:
        """Uids of instructions that may define ``reg`` at block entry."""
        return frozenset(uid for r, uid in self.reaching_in(label) if r == reg)

    def is_single_reaching_def(self, label: str, reg: Reg) -> bool:
        """True when exactly one definition of ``reg`` reaches ``label``."""
        return len(self.definers_of(label, reg)) == 1
