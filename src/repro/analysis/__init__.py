"""Static analyses: data-flow framework, liveness, dominators, loops, weights."""

from .dataflow import DataflowResult, gen_kill_transfer, solve_backward, solve_forward
from .dominators import DominatorTree
from .liveness import LivenessAnalysis, instruction_defs, instruction_uses
from .loops import LoopNest, NaturalLoop
from .reaching import ReachingDefinitions
from .weights import WeightEstimate, arc_probabilities, estimate_weights

__all__ = [
    "DataflowResult",
    "DominatorTree",
    "LivenessAnalysis",
    "LoopNest",
    "NaturalLoop",
    "ReachingDefinitions",
    "WeightEstimate",
    "arc_probabilities",
    "estimate_weights",
    "gen_kill_transfer",
    "instruction_defs",
    "instruction_uses",
    "solve_backward",
    "solve_forward",
]
