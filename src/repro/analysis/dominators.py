"""Dominator trees (Cooper-Harvey-Kennedy iterative algorithm).

Used by natural-loop detection, which in turn feeds the workload
generator's loop statistics and the optimizer's layout heuristics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.program.cfg import ControlFlowGraph


class DominatorTree:
    """Immediate dominators for the blocks reachable from the entry."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self._rpo = self._reverse_postorder()
        self._index = {label: i for i, label in enumerate(self._rpo)}
        self.idom: Dict[str, Optional[str]] = self._compute()

    # -- construction -------------------------------------------------
    def _reverse_postorder(self) -> List[str]:
        seen = set()
        postorder: List[str] = []

        def visit(root: str) -> None:
            stack = [(root, iter(self.cfg.succ_labels(root)))]
            seen.add(root)
            while stack:
                label, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.cfg.succ_labels(succ))))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(label)
                    stack.pop()

        visit(self.cfg.entry_label)
        return list(reversed(postorder))

    def _compute(self) -> Dict[str, Optional[str]]:
        entry = self.cfg.entry_label
        idom: Dict[str, Optional[str]] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for label in self._rpo:
                if label == entry:
                    continue
                preds = [
                    p for p in self.cfg.pred_labels(label) if p in idom and p in self._index
                ]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(pred, new_idom, idom)
                if idom.get(label) != new_idom:
                    idom[label] = new_idom
                    changed = True
        idom[entry] = None
        return idom

    def _intersect(self, a: str, b: str, idom: Dict[str, Optional[str]]) -> str:
        fa, fb = a, b
        while fa != fb:
            while self._index[fa] > self._index[fb]:
                fa = idom[fa]  # type: ignore[assignment]
            while self._index[fb] > self._index[fa]:
                fb = idom[fb]  # type: ignore[assignment]
        return fa

    # -- queries ----------------------------------------------------------
    def immediate_dominator(self, label: str) -> Optional[str]:
        """The immediate dominator, or ``None`` for the entry block."""
        return self.idom.get(label)

    def dominates(self, a: str, b: str) -> bool:
        """True if ``a`` dominates ``b`` (every block dominates itself)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def dominators_of(self, label: str) -> List[str]:
        """All dominators of ``label``, innermost first."""
        result = []
        node: Optional[str] = label
        while node is not None:
            result.append(node)
            node = self.idom.get(node)
        return result
