"""Register liveness.

Function pruning (paper section 3.3.1) must know "the live registers at
these exit points" so that a dummy-consumer *exit block* can keep the
removed cold code from corrupting data-flow analysis.  This module
computes classic backward liveness at block boundaries and exposes
:func:`live_after_instruction` for arc-precise queries at side exits.

Call instructions are modeled with the calling convention from
:mod:`repro.isa.registers`: a call uses the argument registers and
defines the return-value registers plus the remaining caller-saved
registers.  Returns use the return-value registers; this is the
conservative intra-procedural view a post-link optimizer would take.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.isa.instructions import Instruction
from repro.isa.registers import (
    ARG_REGS,
    CALLER_SAVED,
    FLOAT_RETURN_REG,
    INT_RETURN_REG,
    Reg,
)
from repro.program.cfg import ControlFlowGraph

from .dataflow import DataflowResult, solve_backward

_RETURN_VALUE_REGS: FrozenSet[Reg] = frozenset({INT_RETURN_REG, FLOAT_RETURN_REG})


def instruction_uses(inst: Instruction) -> FrozenSet[Reg]:
    """Registers an instruction reads, including call/return effects."""
    if inst.is_call:
        return frozenset(ARG_REGS)
    if inst.is_return:
        return _RETURN_VALUE_REGS
    return frozenset(inst.uses())


def instruction_defs(inst: Instruction) -> FrozenSet[Reg]:
    """Registers an instruction writes, including call clobbers."""
    if inst.is_call:
        return frozenset(CALLER_SAVED)
    return frozenset(inst.defs())


class LivenessAnalysis:
    """Backward liveness over one function's CFG.

    ``boundary`` is the live set at CFG exits (blocks without local
    successors).  The default — nothing live — is the classic
    intra-procedural assumption; passes that must respect unseen
    downstream code (e.g. package dead-code elimination) pass the full
    register set instead.
    """

    def __init__(self, cfg: ControlFlowGraph, boundary: FrozenSet[Reg] = frozenset()):
        self.cfg = cfg
        self.boundary = frozenset(boundary)
        gen: Dict[str, FrozenSet[Reg]] = {}
        kill: Dict[str, FrozenSet[Reg]] = {}
        for block in cfg.blocks:
            use: set = set()
            define: set = set()
            for inst in block.instructions:
                use |= instruction_uses(inst) - define
                define |= instruction_defs(inst)
            gen[block.label] = frozenset(use)
            kill[block.label] = frozenset(define)
        self._gen = gen
        self._kill = kill
        self._result: DataflowResult = solve_backward(
            cfg,
            lambda label, out: gen[label] | (out - kill[label]),
            boundary=self.boundary,
            may=True,
        )

    # -- block-level results ----------------------------------------
    def live_in(self, label: str) -> FrozenSet[Reg]:
        return self._result.in_sets[label]

    def live_out(self, label: str) -> FrozenSet[Reg]:
        return self._result.out_sets[label]

    # -- arc / point-level results ------------------------------------
    def live_on_arc(self, src: str, dst: str) -> FrozenSet[Reg]:
        """Registers live when control flows along ``src -> dst``.

        This is what the exit-block builder needs for a side exit that
        leaves the package along this arc: everything the destination
        (and beyond) may still read.
        """
        if self.cfg.arc(src, dst) is None:
            raise ValueError(f"no arc {src} -> {dst}")
        return self._result.in_sets[dst]

    def live_points(self, label: str) -> List[FrozenSet[Reg]]:
        """Liveness *before* each instruction of block ``label``.

        ``result[i]`` is the live set immediately before instruction
        ``i``; a final entry equal to ``live_out`` is appended so the
        list has ``len(instructions) + 1`` entries.
        """
        block = self.cfg.by_label[label]
        live = set(self.live_out(label))
        points: List[FrozenSet[Reg]] = [frozenset(live)]
        for inst in reversed(block.instructions):
            live -= instruction_defs(inst)
            live |= instruction_uses(inst)
            points.append(frozenset(live))
        points.reverse()
        return points
