"""Generic iterative data-flow framework over a CFG.

Liveness (needed for the paper's exit-block dummy consumers,
section 3.3.1) and any other bit-vector-style analyses are instances of
this worklist solver.  The framework is deliberately simple: block-level
transfer functions over arbitrary ``frozenset`` lattices with union or
intersection joins, iterated to a fixed point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Generic, Iterable, TypeVar

from repro.program.cfg import ControlFlowGraph

T = TypeVar("T")

TransferFn = Callable[[str, FrozenSet[T]], FrozenSet[T]]


@dataclass
class DataflowResult(Generic[T]):
    """Per-block ``in`` and ``out`` sets at the fixed point."""

    in_sets: Dict[str, FrozenSet[T]]
    out_sets: Dict[str, FrozenSet[T]]


def solve_backward(
    cfg: ControlFlowGraph,
    transfer: TransferFn,
    boundary: FrozenSet[T] = frozenset(),
    may: bool = True,
) -> DataflowResult:
    """Solve a backward data-flow problem.

    ``out[b] = join over successors s of in[s]`` (``boundary`` at CFG
    exits), ``in[b] = transfer(b, out[b])``.  ``may=True`` joins with
    union; ``may=False`` with intersection.
    """
    labels = cfg.labels()
    in_sets: Dict[str, FrozenSet[T]] = {l: frozenset() for l in labels}
    out_sets: Dict[str, FrozenSet[T]] = {l: frozenset() for l in labels}
    worklist = deque(reversed(labels))
    queued = set(worklist)

    while worklist:
        label = worklist.popleft()
        queued.discard(label)
        succs = cfg.succ_labels(label)
        if not succs:
            out_set = boundary
        else:
            sets = [in_sets[s] for s in succs]
            out_set = frozenset().union(*sets) if may else frozenset.intersection(*sets)
        out_sets[label] = out_set
        new_in = transfer(label, out_set)
        if new_in != in_sets[label]:
            in_sets[label] = new_in
            for arc in cfg.predecessors(label):
                if arc.src not in queued:
                    worklist.append(arc.src)
                    queued.add(arc.src)
    return DataflowResult(in_sets, out_sets)


def solve_forward(
    cfg: ControlFlowGraph,
    transfer: TransferFn,
    boundary: FrozenSet[T] = frozenset(),
    may: bool = True,
) -> DataflowResult:
    """Solve a forward data-flow problem (dual of :func:`solve_backward`)."""
    labels = cfg.labels()
    in_sets: Dict[str, FrozenSet[T]] = {l: frozenset() for l in labels}
    out_sets: Dict[str, FrozenSet[T]] = {l: frozenset() for l in labels}
    worklist = deque(labels)
    queued = set(worklist)

    while worklist:
        label = worklist.popleft()
        queued.discard(label)
        preds = cfg.pred_labels(label)
        if label == cfg.entry_label or not preds:
            in_set = boundary
        else:
            sets = [out_sets[p] for p in preds]
            in_set = frozenset().union(*sets) if may else frozenset.intersection(*sets)
        in_sets[label] = in_set
        new_out = transfer(label, in_set)
        if new_out != out_sets[label]:
            out_sets[label] = new_out
            for arc in cfg.successors(label):
                if arc.dst not in queued:
                    worklist.append(arc.dst)
                    queued.add(arc.dst)
    return DataflowResult(in_sets, out_sets)


def gen_kill_transfer(
    gen: Dict[str, FrozenSet[T]], kill: Dict[str, FrozenSet[T]]
) -> TransferFn:
    """Classic ``gen/kill`` transfer: ``gen[b] | (x - kill[b])``."""

    def transfer(label: str, flowing: FrozenSet[T]) -> FrozenSet[T]:
        return gen.get(label, frozenset()) | (flowing - kill.get(label, frozenset()))

    return transfer
