"""Profile-weight estimation from branch taken probabilities.

Paper section 5.4: "block and control-flow arc profile weights were
calculated using the taken probabilities of each block in the CFG"
(the method from the thesis [4]).  Given per-block taken probabilities
and an entry weight, the block weights satisfy the flow equations

    w(b) = entry(b) + sum over predecessors p of w(p) * prob(p -> b)

which is a linear system ``(I - P^T) w = entry``.  We solve it directly
with numpy; for (near-)singular systems — e.g. a loop whose back-edge
probability rounds to 1 — the probabilities are damped slightly, which
is the numerical analogue of the paper's remark that "a simpler
approximate-weight propagation method may suffice".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.program.cfg import ArcKind, ControlFlowGraph

#: Cap applied to any single branch-direction probability so the flow
#: system stays non-singular in the presence of always-taken back edges.
MAX_DIRECTION_PROBABILITY = 0.999


@dataclass
class WeightEstimate:
    """Estimated execution weights for one function's CFG."""

    block_weights: Dict[str, float]
    arc_weights: Dict[Tuple[str, str], float]

    def weight(self, label: str) -> float:
        return self.block_weights.get(label, 0.0)

    def arc_weight(self, src: str, dst: str) -> float:
        return self.arc_weights.get((src, dst), 0.0)


def arc_probabilities(
    cfg: ControlFlowGraph, taken_prob: Mapping[str, float]
) -> Dict[Tuple[str, str], float]:
    """Per-arc branch probabilities from per-block taken probabilities.

    Blocks with a single successor send all flow along it; conditional
    branches split flow ``taken_prob`` / ``1 - taken_prob`` (0.5 when
    the block has no recorded probability, matching the algorithm's
    treatment of missing hardware-profile data).
    """
    probs: Dict[Tuple[str, str], float] = {}
    for block in cfg.blocks:
        arcs = cfg.successors(block.label)
        if not arcs:
            continue
        if len(arcs) == 1:
            probs[arcs[0].key] = 1.0
            continue
        tp = float(taken_prob.get(block.label, 0.5))
        tp = min(max(tp, 1.0 - MAX_DIRECTION_PROBABILITY), MAX_DIRECTION_PROBABILITY)
        for arc in arcs:
            probs[arc.key] = tp if arc.kind is ArcKind.TAKEN else 1.0 - tp
    return probs


def estimate_weights(
    cfg: ControlFlowGraph,
    taken_prob: Mapping[str, float],
    entry_weight: float = 1.0,
    entry_weights: Optional[Mapping[str, float]] = None,
) -> WeightEstimate:
    """Solve the flow equations for block and arc weights.

    ``entry_weights`` may name several entry blocks with weights
    (packages can have several entries via links); otherwise all the
    ``entry_weight`` enters at the CFG entry block.
    """
    labels = cfg.labels()
    index = {label: i for i, label in enumerate(labels)}
    n = len(labels)

    entries = np.zeros(n)
    if entry_weights:
        for label, weight in entry_weights.items():
            entries[index[label]] = weight
    else:
        entries[index[cfg.entry_label]] = entry_weight

    probs = arc_probabilities(cfg, taken_prob)
    transfer = np.zeros((n, n))
    for (src, dst), prob in probs.items():
        transfer[index[dst], index[src]] += prob

    system = np.eye(n) - transfer
    try:
        weights = np.linalg.solve(system, entries)
    except np.linalg.LinAlgError:
        # Fall back to a damped iterative propagation.
        weights = _iterative_weights(transfer, entries)

    if not np.all(np.isfinite(weights)):
        weights = _iterative_weights(transfer, entries)
    weights = np.maximum(weights, 0.0)

    block_weights = {label: float(weights[index[label]]) for label in labels}
    arc_weights = {
        key: block_weights[key[0]] * prob for key, prob in probs.items()
    }
    return WeightEstimate(block_weights, arc_weights)


def _iterative_weights(
    transfer: np.ndarray, entries: np.ndarray, iterations: int = 200
) -> np.ndarray:
    """Damped power iteration used when the direct solve fails."""
    damping = 0.98
    weights = entries.copy()
    for _ in range(iterations):
        updated = entries + damping * (transfer @ weights)
        if np.allclose(updated, weights, rtol=1e-9, atol=1e-12):
            weights = updated
            break
        weights = updated
    return weights
