"""Typed errors for the Vacuum Packing pipeline.

The hardware hands software a *lossy* profile (BBB evictions, partial
snapshots, stale addresses — paper section 3.1), so every downstream
stage must be able to say precisely *what* it could not digest.  Each
pipeline stage raises its own :class:`ReproError` subclass; the
:class:`~repro.postlink.vacuum.VacuumPacker` quarantine loop catches
them per phase and degrades gracefully instead of failing the run.

Every error carries an optional ``hint`` — a one-line remediation
suggestion surfaced in :class:`~repro.postlink.vacuum.PhaseDiagnostic`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional


class ReproError(Exception):
    """Base class for all pipeline errors.

    ``phase`` names the hot-spot record index the error belongs to when
    the raising stage knows it; the quarantine loop uses it to isolate
    the failing phase.  ``hint`` is a human-oriented remediation note.
    """

    default_hint: str = ""

    def __init__(
        self,
        message: str,
        *,
        phase: Optional[int] = None,
        hint: Optional[str] = None,
    ):
        super().__init__(message)
        self.phase = phase
        self.hint = hint if hint is not None else self.default_hint


class ProfileError(ReproError):
    """The hot-spot profile itself is unusable (step 1)."""

    default_hint = (
        "re-profile the workload, or repair/drop the offending records "
        "with repro.hsd.serialize before packing"
    )


class ServiceError(ReproError):
    """The fleet profile service could not complete a request.

    Raised by :mod:`repro.service` when an ingest/merge/pack request is
    unservable as a whole (empty ingest set, unknown benchmark binary,
    unusable artifact store).  Per-client problems — a corrupt profile
    document, a stale record — are *not* fatal: they are quarantined
    into the fleet report's rejection list instead.
    """

    default_hint = (
        "check the ingest directory, benchmark name, and artifact "
        "store; per-client failures are quarantined into the fleet "
        "report rather than raised"
    )


class RegionError(ReproError):
    """Region identification failed for one record (step 2).

    ``addresses`` carries the offending branch addresses (e.g. stale
    addresses that resolve to no known block in the profiled image).
    """

    default_hint = (
        "the record references addresses absent from the profiled "
        "image; profile and pack the same binary, or drop the stale "
        "branches from the record"
    )

    def __init__(
        self,
        message: str,
        *,
        addresses: Iterable[int] = (),
        phase: Optional[int] = None,
        hint: Optional[str] = None,
    ):
        super().__init__(message, phase=phase, hint=hint)
        self.addresses: FrozenSet[int] = frozenset(addresses)


class PackageError(ReproError):
    """Package construction / ordering / linking failed (step 3)."""

    default_hint = (
        "the region's hot subgraph could not be packaged; lower "
        "RegionConfig growth limits or quarantine the phase"
    )


class RewriteError(ReproError):
    """Post-link rewriting failed.

    ``package`` names the package being deployed when the failure is
    attributable to one.
    """

    default_hint = (
        "the packed binary could not be produced; quarantine the "
        "offending package's phase and rewrite again"
    )

    def __init__(
        self,
        message: str,
        *,
        package: Optional[str] = None,
        phase: Optional[int] = None,
        hint: Optional[str] = None,
    ):
        super().__init__(message, phase=phase, hint=hint)
        self.package = package


class DifferentialError(ReproError):
    """The original and packed replays did not run to the same end.

    Raised by :func:`~repro.postlink.validate.differential_check` when
    the two runs terminate for *different reasons* (e.g. one halts
    while the other hits the branch budget): the recorded streams then
    cover different execution prefixes, so comparing their digests
    would silently vacuously pass.  ``original`` and ``packed`` carry
    the two stop-reason names.
    """

    default_hint = (
        "the packed replay diverged before the comparison window "
        "closed; the rewrite changed control flow — do not trust "
        "stream digests computed over mismatched prefixes"
    )

    def __init__(
        self,
        message: str,
        *,
        original: str = "",
        packed: str = "",
        phase: Optional[int] = None,
        hint: Optional[str] = None,
    ):
        super().__init__(message, phase=phase, hint=hint)
        self.original = original
        self.packed = packed


class ValidationError(ReproError):
    """A validation oracle rejected a plan or packed program.

    ``issues`` is the list of :class:`~repro.postlink.validate.ValidationIssue`
    objects that failed (kept untyped here to avoid an import cycle).
    """

    default_hint = (
        "inspect PackResult.validation for the failing invariants; in "
        "non-strict mode the offending phases are quarantined"
    )

    def __init__(
        self,
        message: str,
        *,
        issues: Iterable = (),
        phase: Optional[int] = None,
        hint: Optional[str] = None,
    ):
        super().__init__(message, phase=phase, hint=hint)
        self.issues = list(issues)
