"""Post-link rewriting, coverage measurement, validation oracles, and
the VacuumPacker API."""

from repro.errors import DifferentialError

from .coverage import CoverageResult, classify_summary, measure_coverage
from .rewriter import PackedProgram, RewriteStats, clone_program, rewrite_program
from .vacuum import PackResult, PhaseDiagnostic, ProfileResult, VacuumPacker
from .validate import (
    DifferentialReport,
    ValidationIssue,
    ValidationReport,
    differential_check,
    retired_work_instructions,
    validate_pack,
    validate_package,
    validate_packed,
    validate_plan,
)

__all__ = [
    "CoverageResult",
    "DifferentialError",
    "DifferentialReport",
    "PackResult",
    "PackedProgram",
    "PhaseDiagnostic",
    "ProfileResult",
    "RewriteStats",
    "VacuumPacker",
    "ValidationIssue",
    "ValidationReport",
    "classify_summary",
    "clone_program",
    "differential_check",
    "measure_coverage",
    "retired_work_instructions",
    "rewrite_program",
    "validate_pack",
    "validate_package",
    "validate_packed",
    "validate_plan",
]
