"""Post-link rewriting, coverage measurement, and the VacuumPacker API."""

from .coverage import CoverageResult, classify_summary, measure_coverage
from .rewriter import PackedProgram, RewriteStats, clone_program, rewrite_program
from .vacuum import PackResult, ProfileResult, VacuumPacker

__all__ = [
    "CoverageResult",
    "PackResult",
    "PackedProgram",
    "ProfileResult",
    "RewriteStats",
    "VacuumPacker",
    "classify_summary",
    "clone_program",
    "measure_coverage",
    "rewrite_program",
]
