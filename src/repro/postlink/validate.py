"""Validation oracles for package plans and packed programs.

Production binary optimizers treat profile data as untrusted input:
stale or corrupt profiles must be *detected* and discarded, never
allowed to corrupt the output binary.  Two layers of defense live here:

* **Structural validators** — cheap invariant checks run on every
  :class:`~repro.packages.construct.PackagedProgramPlan` and
  :class:`~repro.postlink.rewriter.PackedProgram`: every launch point
  targets a real package entry block, every side exit resolves into
  original (or linked) code, package CFGs are well-formed, and
  ``link_image()`` round-trips every patched displacement.

* **Differential oracle** — replays the workload over the original and
  packed programs and asserts the conditional-branch outcome stream is
  bit-identical (compared via a running digest, so arbitrarily long
  streams cost constant memory) and that retired *work* (non
  control-transfer) instructions are preserved **per origin uid**.
  Packing mostly adds/removes control glue — launch trampolines, exit
  jumps, layout's eliminated jumps — but the cold-sinking pass (paper
  section 5.4) legitimately moves a dead-on-hot-path instruction into
  exit blocks, where it retires fewer times.  The oracle therefore
  allows an origin recorded in :attr:`Package.sunk_origins` to retire
  *fewer* times in the packed run (never more); any other per-origin
  drift means the rewrite changed program semantics.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.engine.compiled import compiled_enabled, run_workload
from repro.engine.trace_cache import traced_run
from repro.errors import DifferentialError, ValidationError
from repro.isa.instructions import Opcode
from repro.packages.construct import PackagedProgramPlan
from repro.packages.package import Package
from repro.program.cfg import is_cross_function, split_cross_function
from repro.program.program import Program
from repro.workloads.base import Workload

from .rewriter import PackedProgram


@dataclass(frozen=True)
class ValidationIssue:
    """One violated invariant."""

    kind: str
    detail: str
    package: Optional[str] = None
    #: Hot-spot record index the issue is attributable to, when known.
    phase: Optional[int] = None

    def render(self) -> str:
        where = f" [{self.package}]" if self.package else ""
        return f"{self.kind}{where}: {self.detail}"


@dataclass
class ValidationReport:
    """Outcome of one validator run."""

    checks: int = 0
    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, kind: str, detail: str, package: Optional[str] = None,
            phase: Optional[int] = None) -> None:
        self.issues.append(ValidationIssue(kind, detail, package, phase))

    def merge(self, other: "ValidationReport") -> "ValidationReport":
        self.checks += other.checks
        self.issues.extend(other.issues)
        return self

    def failing_phases(self) -> Set[int]:
        return {i.phase for i in self.issues if i.phase is not None}

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise ValidationError(
                f"{len(self.issues)} validation issue(s): "
                + "; ".join(i.render() for i in self.issues[:5]),
                issues=self.issues,
            )

    def render(self) -> str:
        if self.ok:
            return f"validation ok ({self.checks} checks)"
        lines = [f"validation FAILED ({len(self.issues)} issues, "
                 f"{self.checks} checks)"]
        lines.extend(f"  - {issue.render()}" for issue in self.issues)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# structural validation: plan
# ---------------------------------------------------------------------------

def _target_resolves(
    target: str,
    package: Package,
    package_labels: Set[str],
    siblings: Dict[str, Package],
    program: Program,
) -> bool:
    """Can a package-block control target be resolved at link time?"""
    if is_cross_function(target):
        remote_fn, remote_label = split_cross_function(target)
        sibling = siblings.get(remote_fn)
        if sibling is not None:
            return any(b.label == remote_label for b in sibling.blocks)
        function = program.functions.get(remote_fn)
        return function is not None and remote_label in function.cfg
    return target in package_labels


def validate_package(
    package: Package,
    siblings: Dict[str, Package],
    program: Program,
) -> ValidationReport:
    """Structural invariants of one package."""
    report = ValidationReport()
    phase = package.region_index

    report.checks += 1
    if not package.blocks:
        report.add("empty_package", "package has no blocks",
                   package.name, phase)
        return report

    labels = [block.label for block in package.blocks]
    label_set = set(labels)
    report.checks += 1
    if len(labels) != len(label_set):
        dupes = sorted({l for l in labels if labels.count(l) > 1})
        report.add("duplicate_labels", f"duplicated block labels {dupes}",
                   package.name, phase)

    # Entry blocks exist in the package, and mirror real original code.
    for entry_label, location in package.entry_map.items():
        report.checks += 1
        if entry_label not in label_set:
            report.add("dangling_entry",
                       f"entry label {entry_label!r} has no block",
                       package.name, phase)
        fn_name, block_label = location
        function = program.functions.get(fn_name)
        report.checks += 1
        if function is None or block_label not in function.cfg:
            report.add("unmapped_entry",
                       f"entry {entry_label!r} mirrors nonexistent "
                       f"{fn_name}/{block_label}", package.name, phase)

    # CFG well-formedness: every control target resolves, and control
    # never falls off the end of the package function.
    for i, block in enumerate(package.blocks):
        term = block.terminator
        is_last = i == len(package.blocks) - 1
        if term is None or term.is_conditional_branch or term.is_call:
            report.checks += 1
            if is_last:
                report.add("falls_off_end",
                           f"block {block.label!r} can fall off the "
                           "package end", package.name, phase)
        if term is None:
            continue
        if term.is_conditional_branch or term.opcode is Opcode.JUMP:
            report.checks += 1
            if not _target_resolves(term.target, package, label_set,
                                    siblings, program):
                report.add("unresolved_target",
                           f"block {block.label!r} targets unresolvable "
                           f"{term.target!r}", package.name, phase)
        elif term.is_call:
            report.checks += 1
            if is_cross_function(term.target):
                if not _target_resolves(term.target, package, label_set,
                                        siblings, program):
                    report.add("unresolved_call",
                               f"block {block.label!r} calls unresolvable "
                               f"{term.target!r}", package.name, phase)
            elif term.target not in program.functions:
                report.add("unresolved_call",
                           f"block {block.label!r} calls unknown function "
                           f"{term.target!r}", package.name, phase)

    # Exits resolve into original code, or into a linked sibling with an
    # identical calling context (paper section 3.3.4).
    for exit_site in package.exits:
        if exit_site.is_linked:
            dest_name, dest_label = exit_site.linked_to
            sibling = siblings.get(dest_name)
            report.checks += 1
            if sibling is None:
                report.add("dangling_link",
                           f"exit {exit_site.label!r} links to unknown "
                           f"package {dest_name!r}", package.name, phase)
                continue
            dest_block = next(
                (b for b in sibling.blocks if b.label == dest_label), None
            )
            report.checks += 1
            if dest_block is None:
                report.add("dangling_link",
                           f"exit {exit_site.label!r} links to missing "
                           f"block {dest_name}::{dest_label}",
                           package.name, phase)
            elif dest_block.context != exit_site.context:
                report.add("context_mismatch",
                           f"exit {exit_site.label!r} links across calling "
                           f"contexts {exit_site.context} -> "
                           f"{dest_block.context}", package.name, phase)
        else:
            fn_name, block_label = exit_site.target
            function = program.functions.get(fn_name)
            report.checks += 1
            if function is None or block_label not in function.cfg:
                report.add("unresolved_exit",
                           f"exit {exit_site.label!r} targets nonexistent "
                           f"{fn_name}/{block_label}", package.name, phase)
    return report


def validate_plan(
    plan: PackagedProgramPlan, program: Program
) -> ValidationReport:
    """Structural invariants of a whole package plan."""
    report = ValidationReport()
    siblings = {package.name: package for package in plan.packages}
    for package in plan.packages:
        report.merge(validate_package(package, siblings, program))
    return report


# ---------------------------------------------------------------------------
# structural validation: packed program
# ---------------------------------------------------------------------------

def validate_packed(packed: PackedProgram) -> ValidationReport:
    """Structural invariants of the rewritten binary."""
    report = ValidationReport()
    program = packed.program
    packages = {package.name: package for package in plan_packages(packed)}

    # Program-level link validity (call targets resolve).
    report.checks += 1
    try:
        program.validate()
    except Exception as exc:
        report.add("program_invalid", str(exc))

    # Every launch point targets a real entry block of a real package.
    for (fn_name, label), (pkg_name, pkg_label) in packed.launch_map.items():
        package = packages.get(pkg_name)
        phase = package.region_index if package else None
        report.checks += 1
        if pkg_name not in packed.package_names:
            report.add("launch_unknown_package",
                       f"launch {fn_name}/{label} targets undeployed "
                       f"package {pkg_name!r}", pkg_name, phase)
            continue
        function = program.functions.get(pkg_name)
        report.checks += 1
        if function is None or pkg_label not in function.cfg:
            report.add("launch_missing_block",
                       f"launch {fn_name}/{label} targets missing block "
                       f"{pkg_name}::{pkg_label}", pkg_name, phase)
            continue
        report.checks += 1
        if package is not None and pkg_label not in package.entry_map:
            report.add("launch_not_entry",
                       f"launch {fn_name}/{label} targets non-entry block "
                       f"{pkg_name}::{pkg_label}", pkg_name, phase)

    # Side exits of deployed packages leave the package set (or follow
    # a link into a sibling package).
    for package in packages.values():
        for exit_site in package.exits:
            if exit_site.is_linked:
                dest_name, dest_label = exit_site.linked_to
                dest_fn = program.functions.get(dest_name)
                report.checks += 1
                if (
                    dest_name not in packed.package_names
                    or dest_fn is None
                    or dest_label not in dest_fn.cfg
                ):
                    report.add("exit_bad_link",
                               f"exit {exit_site.label!r} links to "
                               f"{dest_name}::{dest_label}, not a deployed "
                               "package block", package.name,
                               package.region_index)
            else:
                fn_name, block_label = exit_site.target
                function = program.functions.get(fn_name)
                report.checks += 1
                if function is None or block_label not in function.cfg:
                    report.add("exit_unresolved",
                               f"exit {exit_site.label!r} targets missing "
                               f"{fn_name}/{block_label}", package.name,
                               package.region_index)
                    continue
                report.checks += 1
                if fn_name in packed.package_names:
                    report.add("exit_into_package",
                               f"unlinked exit {exit_site.label!r} lands in "
                               f"package code {fn_name}/{block_label}",
                               package.name, package.region_index)

    report.merge(_validate_image_roundtrip(packed))
    return report


def _validate_image_roundtrip(packed: PackedProgram) -> ValidationReport:
    """``link_image()`` must encode, and every launch patch must decode
    back to a displacement that reaches the package entry block."""
    report = ValidationReport()
    report.checks += 1
    try:
        image = packed.link_image()
    except Exception as exc:
        report.add("link_failed", f"link_image() failed: {exc}")
        return report

    report.checks += 1
    if image.size_instructions() != packed.program.static_size():
        report.add("image_size_mismatch",
                   f"image holds {image.size_instructions()} instructions, "
                   f"program has {packed.program.static_size()}")

    # The launch map records where each patch was *supposed* to land;
    # comparing the decoded displacement against it (rather than the
    # instruction's current target) catches a mis-applied patch.
    intended: Dict[Tuple[str, str], Tuple[str, str]] = {
        (fn_name, f"{label}__lp"): dest
        for (fn_name, label), dest in packed.launch_map.items()
    }
    for function in packed.program.functions.values():
        for block in function.blocks:
            if not block.meta.get("launch_trampoline"):
                continue
            term = block.terminator
            if term is None or not is_cross_function(term.target):
                continue
            dest = intended.get((function.name, block.label))
            if dest is None:
                dest = split_cross_function(term.target)
            dest_fn, dest_label = dest
            address = image.address_of(term)
            decoded = image.decode_at(address)
            resolved = address + decoded.imm
            report.checks += 1
            try:
                expected = image.address_of_block(dest_fn, dest_label)
            except KeyError:
                report.add("patch_mismatch",
                           f"launch at {address:#x} should target "
                           f"{dest_fn}::{dest_label}, which has no address",
                           dest_fn)
                continue
            if resolved != expected:
                report.add("patch_mismatch",
                           f"launch displacement at {address:#x} resolves to "
                           f"{resolved:#x}, expected {expected:#x} "
                           f"({dest_fn}::{dest_label})", dest_fn)
    return report


def plan_packages(packed: PackedProgram) -> List[Package]:
    """The plan's packages that were actually deployed into the binary."""
    return [
        package
        for package in packed.plan.packages
        if package.name in packed.package_names
    ]


# ---------------------------------------------------------------------------
# differential oracle
# ---------------------------------------------------------------------------

@dataclass
class DifferentialReport:
    """Original-vs-packed replay comparison."""

    branches_original: int = 0
    branches_packed: int = 0
    taken_original: int = 0
    taken_packed: int = 0
    work_original: int = 0
    work_packed: int = 0
    #: Dynamic retirements saved by instructions the sink pass moved
    #: into exit blocks (a recorded, legitimate reduction).
    work_sunk: int = 0
    #: Origin uids whose retirement counts differ and are *not*
    #: explained by recorded sinking — each one is a semantics change.
    work_unexplained: List[int] = field(default_factory=list)
    stream_digest_original: str = ""
    stream_digest_packed: str = ""
    error: Optional[str] = None

    @property
    def streams_match(self) -> bool:
        return (
            self.stream_digest_original == self.stream_digest_packed
            and self.branches_original == self.branches_packed
        )

    @property
    def work_matches(self) -> bool:
        return not self.work_unexplained

    @property
    def ok(self) -> bool:
        return self.error is None and self.streams_match and self.work_matches

    def render(self) -> str:
        if self.ok:
            sunk = f", {self.work_sunk} sunk" if self.work_sunk else ""
            return (f"differential ok: {self.branches_original} branches, "
                    f"{self.work_original} work instructions{sunk}")
        parts = ["differential FAILED:"]
        if self.error:
            parts.append(f"replay error: {self.error}")
        if not self.streams_match:
            parts.append(
                f"branch streams differ "
                f"(original {self.branches_original} branches "
                f"{self.stream_digest_original[:12]}, packed "
                f"{self.branches_packed} branches "
                f"{self.stream_digest_packed[:12]})")
        if not self.work_matches:
            sample = ", ".join(str(u) for u in self.work_unexplained[:5])
            parts.append(f"work instructions differ "
                         f"(original {self.work_original}, "
                         f"packed {self.work_packed}; unexplained "
                         f"origins: {sample})")
        return " ".join(parts)


class _StreamHasher:
    """Constant-memory digest over a (branch uid, taken) event stream."""

    def __init__(self) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        self._buffer = bytearray()
        self.events = 0
        self.taken = 0

    def __call__(self, uid: int, taken: bool, phase: int) -> None:
        self.events += 1
        if taken:
            self.taken += 1
        self._buffer += struct.pack("<q?", uid, taken)
        if len(self._buffer) >= 65536:
            self._hash.update(self._buffer)
            self._buffer.clear()

    def digest(self) -> str:
        self._hash.update(self._buffer)
        self._buffer.clear()
        return self._hash.hexdigest()


#: Packed record layout matching ``struct.pack("<q?", uid, taken)``.
_EVENT_DTYPE = np.dtype([("u", "<i8"), ("t", "?")])


def digest_stream_arrays(uids, taken) -> str:
    """The :class:`_StreamHasher` digest of a whole recorded stream,
    computed in one shot from (uid, taken) arrays."""
    events = np.empty(len(uids), dtype=_EVENT_DTYPE)
    events["u"] = uids
    events["t"] = taken
    digest = hashlib.blake2b(digest_size=16)
    digest.update(events.tobytes())
    return digest.hexdigest()


def retired_work_instructions(program: Program, summary) -> int:
    """Dynamic non-control (work) instructions retired by one run."""
    per_block: Dict[int, int] = {}
    for function in program.functions.values():
        for block in function.blocks:
            per_block[block.uid] = sum(
                1 for inst in block.instructions
                if not inst.is_pseudo and not inst.is_control
            )
    return sum(
        visits * per_block.get(uid, 0)
        for uid, visits in summary.block_visits.items()
    )


def retired_work_by_origin(program: Program, summary) -> Dict[int, int]:
    """Dynamic work retirements keyed by original-binary instruction uid.

    Replicated copies in packages aggregate onto the instruction they
    were cloned from (via :meth:`Instruction.root_origin`), so the
    packed map is directly comparable to the original program's map.
    """
    per_block: Dict[int, List[int]] = {}
    for function in program.functions.values():
        for block in function.blocks:
            per_block[block.uid] = [
                inst.root_origin()
                for inst in block.instructions
                if not inst.is_pseudo and not inst.is_control
            ]
    counts: Dict[int, int] = {}
    for uid, visits in summary.block_visits.items():
        for origin in per_block.get(uid, ()):
            counts[origin] = counts.get(origin, 0) + visits
    return counts


def _work_divergences(
    original: Dict[int, int],
    packed: Dict[int, int],
    sunk_origins: Set[int],
) -> Tuple[List[int], int]:
    """Split per-origin count differences into (unexplained, sunk savings)."""
    unexplained: List[int] = []
    sunk_savings = 0
    for origin in set(original) | set(packed):
        before = original.get(origin, 0)
        after = packed.get(origin, 0)
        if after == before:
            continue
        if origin in sunk_origins and after < before:
            sunk_savings += before - after
        else:
            unexplained.append(origin)
    return sorted(unexplained), sunk_savings


def differential_check(
    workload: Workload, packed: PackedProgram
) -> DifferentialReport:
    """Replay the workload over both programs and compare behavior.

    The behavior model and phase script are keyed by branch *origin*
    uids and occurrence counts, so both replays consume the identical
    ground truth; any divergence is the rewriter's fault.

    Raises :class:`~repro.errors.DifferentialError` when the two runs
    stop for different reasons: the traces then cover different
    execution prefixes and none of the comparisons in the returned
    report would be meaningful.

    Under the compiled engine the original side comes through the trace
    cache, the packed side is *recomputed* (never replayed — replay
    would assume the very stream equality this oracle checks), and the
    digests are taken over the recorded arrays in bulk.
    """
    report = DifferentialReport()
    if compiled_enabled():
        try:
            original_trace = traced_run(workload)
            packed_trace = run_workload(
                workload, program=packed.program, collect_trace=True
            )
        except Exception as exc:
            report.error = f"{type(exc).__name__}: {exc}"
            return report
        original_run = original_trace.summary
        packed_run = packed_trace.summary
        report.branches_original = len(original_trace)
        report.branches_packed = len(packed_trace)
        report.taken_original = original_run.taken_branches
        report.taken_packed = packed_run.taken_branches
        report.stream_digest_original = digest_stream_arrays(
            original_trace.uids, original_trace.taken
        )
        report.stream_digest_packed = digest_stream_arrays(
            packed_trace.uids, packed_trace.taken
        )
    else:
        original_hash = _StreamHasher()
        packed_hash = _StreamHasher()
        try:
            original_run = workload.run(branch_hooks=[original_hash])
            packed_run = workload.run(
                program=packed.program, branch_hooks=[packed_hash]
            )
        except Exception as exc:
            report.error = f"{type(exc).__name__}: {exc}"
            return report
        report.branches_original = original_hash.events
        report.branches_packed = packed_hash.events
        report.taken_original = original_hash.taken
        report.taken_packed = packed_hash.taken
        report.stream_digest_original = original_hash.digest()
        report.stream_digest_packed = packed_hash.digest()

    report.work_original = retired_work_instructions(
        workload.program, original_run
    )
    report.work_packed = retired_work_instructions(
        packed.program, packed_run
    )
    sunk_origins: Set[int] = set()
    for package in plan_packages(packed):
        sunk_origins |= package.sunk_origins
    report.work_unexplained, report.work_sunk = _work_divergences(
        retired_work_by_origin(workload.program, original_run),
        retired_work_by_origin(packed.program, packed_run),
        sunk_origins,
    )
    # A stop-reason mismatch means the two runs terminated for different
    # reasons — the recorded streams then cover *different execution
    # prefixes*, and every comparison above was computed over truncated,
    # incommensurable data.  A mere failing report would let a caller
    # that only consults streams_match/work_matches silently pass, so
    # this is a loud, typed failure instead.
    if original_run.stop_reason is not packed_run.stop_reason:
        raise DifferentialError(
            f"stop reasons diverge: original {original_run.stop_reason.value}, "
            f"packed {packed_run.stop_reason.value} — traces cover different "
            "prefixes and cannot be compared",
            original=original_run.stop_reason.value,
            packed=packed_run.stop_reason.value,
        )
    return report


def validate_pack(
    workload: Workload,
    packed: PackedProgram,
    differential: bool = False,
) -> Tuple[ValidationReport, Optional[DifferentialReport]]:
    """Run the full oracle battery over one packed program."""
    structural = validate_plan(packed.plan, workload.program)
    structural.merge(validate_packed(packed))
    diff = differential_check(workload, packed) if differential else None
    return structural, diff
