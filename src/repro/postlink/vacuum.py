"""The top-level :class:`VacuumPacker` API.

Ties the whole pipeline together (paper Figure 1):

1. **profile** — run the workload under the Hot Spot Detector and
   software-filter the detections into unique phase records;
2. **identify** — map each record onto the CFG (seeding + inference +
   heuristic growth) to get one hot region per phase;
3. **pack** — construct, order, and link the packages, then rewrite
   the binary with launch points.

Example::

    packer = VacuumPacker()
    result = packer.pack(workload)
    print(result.coverage.package_fraction)   # Figure 8's metric
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine.executor import ExecutionSummary
from repro.engine.listeners import HSDListener
from repro.hsd.config import HSDConfig
from repro.hsd.detector import HotSpotDetector
from repro.hsd.filtering import SimilarityPolicy
from repro.hsd.records import HotSpotRecord
from repro.packages.construct import PackagedProgramPlan, construct_all
from repro.program.image import ProgramImage
from repro.regions.config import RegionConfig
from repro.regions.identify import branch_locator_from_image, identify_regions
from repro.regions.region import HotRegion
from repro.workloads.base import Workload

from .coverage import CoverageResult, measure_coverage
from .rewriter import PackedProgram, rewrite_program


@dataclass
class ProfileResult:
    """Output of the hardware profiling step."""

    records: List[HotSpotRecord]
    raw_detections: int
    summary: ExecutionSummary
    image: ProgramImage

    @property
    def phase_count(self) -> int:
        return len(self.records)


@dataclass
class PackResult:
    """Output of the full Vacuum Packing pipeline for one workload."""

    workload: Workload
    profile: ProfileResult
    regions: List[HotRegion]
    plan: PackagedProgramPlan
    packed: PackedProgram
    coverage: CoverageResult

    # -- convenience views -------------------------------------------
    @property
    def packages(self):
        return self.plan.packages

    def expansion_row(self) -> dict:
        """Table 3 metrics for this workload."""
        original = self.packed.original_static_size
        # Unique static instructions selected into at least one package.
        unique_selected = _unique_selected_instructions(self.regions)
        return {
            "benchmark": self.workload.name,
            "pct_increase": 100.0 * self.packed.static_size_increase(),
            "pct_selected": 100.0 * unique_selected / original,
            "package_instructions": self.packed.package_static_size(),
            "replication": (
                self.packed.package_static_size() / unique_selected
                if unique_selected
                else 0.0
            ),
        }


def _unique_selected_instructions(regions: List[HotRegion]) -> int:
    selected = set()
    for region in regions:
        for name in region.function_names():
            function = region.program.function(name)
            for label in region.subgraph(name).blocks:
                for inst in function.cfg.by_label[label].instructions:
                    if not inst.is_pseudo:
                        selected.add(inst.root_origin())
    return len(selected)


class VacuumPacker:
    """End-to-end Vacuum Packing pipeline with the paper's defaults."""

    def __init__(
        self,
        hsd_config: Optional[HSDConfig] = None,
        region_config: Optional[RegionConfig] = None,
        similarity: Optional[SimilarityPolicy] = None,
        link: bool = True,
        optimize: bool = True,
        classic: bool = False,
        ordering: str = "best",
    ):
        self.hsd_config = hsd_config or HSDConfig()
        self.region_config = region_config or RegionConfig()
        self.similarity = similarity or SimilarityPolicy()
        self.link = link
        self.optimize = optimize
        self.classic = classic
        self.ordering = ordering

    # -- step 1 ------------------------------------------------------
    def profile(self, workload: Workload) -> ProfileResult:
        """Run the workload under the Hot Spot Detector."""
        image = ProgramImage(workload.program)
        address_of = {
            uid: address
            for uid, address in image.instruction_address.items()
        }
        listener = HSDListener(
            HotSpotDetector(self.hsd_config), address_of, self.similarity
        )
        summary = workload.run(branch_hooks=[listener])
        return ProfileResult(
            records=listener.unique_records,
            raw_detections=listener.raw_detections,
            summary=summary,
            image=image,
        )

    # -- step 2 -----------------------------------------------------------
    def identify(
        self, workload: Workload, profile: ProfileResult
    ) -> List[HotRegion]:
        locate = branch_locator_from_image(profile.image)
        return identify_regions(
            workload.program, profile.records, locate, self.region_config
        )

    # -- step 3 -----------------------------------------------------------
    def pack(
        self, workload: Workload, profile: Optional[ProfileResult] = None
    ) -> PackResult:
        """Run the full pipeline; profiles first if not given one."""
        profile = profile or self.profile(workload)
        regions = self.identify(workload, profile)
        plan = construct_all(regions, link=self.link, ordering=self.ordering)
        if self.optimize:
            from repro.optimize.passes import optimize_packages

            optimize_packages(plan.packages, regions, enable_classic=self.classic)
        packed = rewrite_program(workload.program, plan)
        coverage = measure_coverage(workload, packed)
        return PackResult(
            workload=workload,
            profile=profile,
            regions=regions,
            plan=plan,
            packed=packed,
            coverage=coverage,
        )
