"""The top-level :class:`VacuumPacker` API.

Ties the whole pipeline together (paper Figure 1):

1. **profile** — run the workload under the Hot Spot Detector and
   software-filter the detections into unique phase records;
2. **identify** — map each record onto the CFG (seeding + inference +
   heuristic growth) to get one hot region per phase;
3. **pack** — construct, order, and link the packages, then rewrite
   the binary with launch points.

The hardware hands software *lossy* profile data, so ``pack`` runs a
per-phase **quarantine loop**: a record whose region identification,
package construction, rewrite, or validation fails is dropped with a
structured :class:`PhaseDiagnostic` and the pipeline completes with the
surviving packages.  ``strict=True`` is the escape hatch that re-raises
the first typed error instead.

The recommended entry point is the :mod:`repro.api` facade, which
composes every knob into one :class:`~repro.api.PipelineConfig`::

    import repro

    config = repro.PipelineConfig()           # paper defaults
    result = repro.pack("134.perl/A", config)
    print(result.coverage.package_fraction)   # Figure 8's metric
    for diag in result.diagnostics:           # quarantined phases
        print(diag.render())

Constructing :class:`VacuumPacker` with a config is equivalent
(``VacuumPacker(config).pack(workload)``); the historical scattered
keyword arguments (``VacuumPacker(classic=True, strict=True)``) still
work through a shim that emits a ``DeprecationWarning``.

Every stage reports to :mod:`repro.obs`: the Figure-1 spans
(``pipeline.profile`` … ``pipeline.validate``) when tracing is enabled
(``repro trace``), and the ``pipeline.*`` metrics (quarantine drops,
per-stage wall time, bytes rewritten) always.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.obs import annotate, inc, observe, span

from repro.engine.executor import ExecutionSummary
from repro.engine.listeners import HSDListener
from repro.engine.trace_cache import compiled_enabled, image_for, traced_run
from repro.errors import ProfileError, ReproError, RewriteError
from repro.hsd.config import HSDConfig
from repro.hsd.detector import HotSpotDetector
from repro.hsd.filtering import SimilarityPolicy
from repro.hsd.records import HotSpotRecord
from repro.packages.construct import (
    PackagedProgramPlan,
    RegionPackages,
    assemble_plan,
    construct_packages,
)
from repro.packages.ordering import check_ordering_mode
from repro.program.image import ProgramImage
from repro.regions.config import RegionConfig
from repro.regions.identify import branch_locator_from_image, identify_region
from repro.regions.region import HotRegion, selected_origins
from repro.workloads.base import Workload

from .coverage import CoverageResult, measure_coverage
from .rewriter import PackedProgram, rewrite_program


@dataclass
class ProfileResult:
    """Output of the hardware profiling step."""

    records: List[HotSpotRecord]
    raw_detections: int
    summary: ExecutionSummary
    image: ProgramImage

    @property
    def phase_count(self) -> int:
        return len(self.records)


@dataclass
class PhaseDiagnostic:
    """Why one phase was quarantined (or flagged) during packing."""

    stage: str                      # profile | identify | construct |
                                    # optimize | rewrite | validate | coverage
    error: str
    phase: Optional[int] = None     # hot-spot record index, when known
    exception_type: str = ""
    hint: str = ""

    @classmethod
    def from_exception(
        cls, stage: str, exc: BaseException, phase: Optional[int] = None
    ) -> "PhaseDiagnostic":
        if phase is None and isinstance(exc, ReproError):
            phase = exc.phase
        hint = exc.hint if isinstance(exc, ReproError) else ""
        return cls(
            stage=stage,
            error=str(exc),
            phase=phase,
            exception_type=type(exc).__name__,
            hint=hint,
        )

    def render(self) -> str:
        who = f"phase #{self.phase}" if self.phase is not None else "pipeline"
        line = f"[{self.stage}] {who}: {self.error}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line


@dataclass
class PackResult:
    """Output of the full Vacuum Packing pipeline for one workload."""

    workload: Workload
    profile: ProfileResult
    regions: List[HotRegion]
    plan: PackagedProgramPlan
    packed: PackedProgram
    coverage: CoverageResult
    #: Quarantined phases and other structured failure reports.
    diagnostics: List[PhaseDiagnostic] = field(default_factory=list)
    #: Structural validation report for the surviving plan+binary
    #: (``None`` when the packer ran with ``validate=False``).
    validation: Optional[object] = None

    # -- convenience views -------------------------------------------
    @property
    def packages(self):
        return self.plan.packages

    def quarantined_phases(self) -> Set[int]:
        """Record indexes that were dropped on the way to this result."""
        packed_phases = {r.record.index for r in self.regions}
        return {
            d.phase
            for d in self.diagnostics
            if d.phase is not None and d.phase not in packed_phases
        }

    def unique_selected_instructions(self) -> int:
        """Static instructions selected into ≥ 1 package (Table 3).

        Counts via the shared :func:`repro.regions.region.
        selected_origins` helper — the same implementation the fleet
        service's shard payloads use.
        """
        return len(selected_origins(self.regions))

    def expansion_row(self) -> dict:
        """Table 3 metrics for this workload."""
        original = self.packed.original_static_size
        # Unique static instructions selected into at least one package.
        unique_selected = self.unique_selected_instructions()
        return {
            "benchmark": self.workload.name,
            "pct_increase": 100.0 * self.packed.static_size_increase(),
            "pct_selected": 100.0 * unique_selected / original,
            "package_instructions": self.packed.package_static_size(),
            "replication": (
                self.packed.package_static_size() / unique_selected
                if unique_selected
                else 0.0
            ),
        }


class VacuumPacker:
    """End-to-end Vacuum Packing pipeline with the paper's defaults.

    Configure with one :class:`~repro.api.PipelineConfig`
    (``VacuumPacker(config)``); with no argument the paper defaults
    apply.  ``strict=False`` (the default) degrades per phase: any
    record whose processing fails is quarantined with a
    :class:`PhaseDiagnostic` and the pipeline completes with the
    survivors.  ``strict=True`` re-raises the first error instead.
    ``validate`` controls whether the structural oracles
    (:mod:`repro.postlink.validate`) gate every pack.

    The pre-:mod:`repro.api` scattered keyword arguments
    (``hsd_config=`` … ``validate=``) still work but emit a
    ``DeprecationWarning``; they are folded into a config by
    :func:`repro.api.config_from_legacy`.
    """

    def __init__(
        self,
        config=None,
        *,
        hsd_config: Optional[HSDConfig] = None,
        region_config: Optional[RegionConfig] = None,
        similarity: Optional[SimilarityPolicy] = None,
        link: Optional[bool] = None,
        optimize: Optional[bool] = None,
        classic: Optional[bool] = None,
        ordering: Optional[str] = None,
        strict: Optional[bool] = None,
        validate: Optional[bool] = None,
    ):
        from repro.api import PipelineConfig, config_from_legacy

        legacy = {
            name: value
            for name, value in (
                ("hsd_config", hsd_config),
                ("region_config", region_config),
                ("similarity", similarity),
                ("link", link),
                ("optimize", optimize),
                ("classic", classic),
                ("ordering", ordering),
                ("strict", strict),
                ("validate", validate),
            )
            if value is not None
        }
        if config is not None and not isinstance(config, PipelineConfig):
            if isinstance(config, HSDConfig):
                # Oldest spelling: the HSD config passed positionally.
                legacy.setdefault("hsd_config", config)
                config = None
            else:
                raise TypeError(
                    "VacuumPacker() expects a repro.api.PipelineConfig, "
                    f"got {type(config).__name__}"
                )
        if legacy:
            warnings.warn(
                "VacuumPacker's scattered keyword arguments are "
                "deprecated; pass repro.api.PipelineConfig "
                f"(got: {', '.join(sorted(legacy))})",
                DeprecationWarning,
                stacklevel=2,
            )
            config = config_from_legacy(config, **legacy)
        self.config = config or PipelineConfig()
        self.hsd_config = self.config.hsd
        self.region_config = self.config.region
        self.similarity = self.config.similarity
        self.link = self.config.link
        self.optimize = self.config.optimize
        self.classic = self.config.classic
        self.ordering = check_ordering_mode(self.config.ordering)
        self.strict = self.config.strict
        self.validate = self.config.validate

    # -- step 1 ------------------------------------------------------
    def profile(self, workload: Workload) -> ProfileResult:
        """Run the workload under the Hot Spot Detector.

        With the compiled engine (the default) the retired-branch trace
        comes through the content-addressed trace cache and is fed to
        the detector's chunked fast path; ``REPRO_ENGINE=reference``
        keeps the original per-event interpreter plumbing.
        """
        started = time.perf_counter()
        with span("pipeline.profile", workload=workload.name) as entry:
            image = image_for(workload.program)
            address_of = {
                uid: address
                for uid, address in image.instruction_address.items()
            }
            listener = HSDListener(
                HotSpotDetector(self.hsd_config), address_of, self.similarity
            )
            if compiled_enabled():
                trace = traced_run(workload)
                listener.consume_trace(trace.uids, trace.taken)
                summary = trace.summary
            else:
                summary = workload.run(branch_hooks=[listener])
            annotate(
                entry,
                records=len(listener.unique_records),
                raw_detections=listener.raw_detections,
                branches=summary.branches,
            )
        observe("pipeline.stage.seconds", time.perf_counter() - started,
                stage="profile")
        inc("pipeline.phases_detected", len(listener.unique_records))
        return ProfileResult(
            records=listener.unique_records,
            raw_detections=listener.raw_detections,
            summary=summary,
            image=image,
        )

    def profile_trace(
        self,
        workload: Workload,
        trace,
        image: Optional[ProgramImage] = None,
    ) -> ProfileResult:
        """Profile from an already-recorded branch trace.

        The batched fleet engine (:mod:`repro.engine.batched`) advances
        many clients through one program in lockstep and hands each
        row's :class:`~repro.engine.trace_cache.TraceData` here; the
        detector/filter stage is identical to :meth:`profile`, only the
        engine run is skipped.  Pass ``image`` to share the linked
        image across rows instead of re-deriving it per client.
        """
        started = time.perf_counter()
        with span("pipeline.profile", workload=workload.name) as entry:
            image = image or image_for(workload.program)
            address_of = {
                uid: address
                for uid, address in image.instruction_address.items()
            }
            listener = HSDListener(
                HotSpotDetector(self.hsd_config), address_of, self.similarity
            )
            listener.consume_trace(trace.uids, trace.taken)
            summary = trace.summary
            annotate(
                entry,
                records=len(listener.unique_records),
                raw_detections=listener.raw_detections,
                branches=summary.branches,
            )
        observe("pipeline.stage.seconds", time.perf_counter() - started,
                stage="profile")
        inc("pipeline.phases_detected", len(listener.unique_records))
        return ProfileResult(
            records=listener.unique_records,
            raw_detections=listener.raw_detections,
            summary=summary,
            image=image,
        )

    def pack_records(
        self,
        workload: Workload,
        records: List[HotSpotRecord],
        image: Optional[ProgramImage] = None,
    ) -> PackResult:
        """Pack from externally supplied phase records.

        The records need not come from profiling ``workload`` in this
        process: offline re-optimization loads them from a persisted
        profile document, and the fleet service
        (:mod:`repro.service`) hands over *merged* consensus records
        aggregated across many client runs.  The only requirement is
        that their branch addresses resolve in ``workload``'s linked
        image (i.e. profile and pack the same binary) — stale
        addresses are quarantined per phase as usual.  The synthetic
        ``summary`` is empty because no run backs these records.
        """
        profile = ProfileResult(
            records=list(records),
            raw_detections=len(records),
            summary=ExecutionSummary(),
            image=image or image_for(workload.program),
        )
        return self.pack(workload, profile=profile)

    # -- step 2 -----------------------------------------------------------
    def identify(
        self, workload: Workload, profile: ProfileResult
    ) -> List[HotRegion]:
        """Strict identification of every record (raises on the first
        unusable one); ``pack`` quarantines per record instead."""
        locate = branch_locator_from_image(profile.image)
        return [
            identify_region(
                workload.program, record, locate, self.region_config
            )
            for record in profile.records
        ]

    # -- step 3 -----------------------------------------------------------
    def pack(
        self, workload: Workload, profile: Optional[ProfileResult] = None
    ) -> PackResult:
        """Run the full pipeline; profiles first if not given one."""
        with span("vacuum.pack", workload=workload.name) as root:
            profile = profile or self.profile(workload)
            diagnostics: List[PhaseDiagnostic] = []

            records = self._screen_records(profile.records, diagnostics)
            started = time.perf_counter()
            with span("pipeline.identify", records=len(records)) as entry:
                regions = self._identify_surviving(
                    workload, profile, records, diagnostics
                )
                annotate(entry, regions=len(regions))
            observe("pipeline.stage.seconds",
                    time.perf_counter() - started, stage="identify")

            surviving = list(regions)
            validation = None
            while True:
                plan, packed, validation, failed = self._attempt(
                    workload, surviving, diagnostics
                )
                if not failed:
                    break
                next_surviving = [
                    r for r in surviving if r.record.index not in failed
                ]
                if len(next_surviving) == len(surviving):  # pragma: no cover
                    # Failure not attributable to any surviving phase;
                    # drop everything rather than loop forever.
                    diagnostics.append(PhaseDiagnostic(
                        stage="rewrite",
                        error="unattributable failure; quarantining all "
                              "remaining phases",
                    ))
                    next_surviving = []
                surviving = next_surviving

            started = time.perf_counter()
            with span("pipeline.coverage") as entry:
                coverage = self._measure(workload, packed, diagnostics)
                annotate(entry, branches=coverage.branches)
            observe("pipeline.stage.seconds",
                    time.perf_counter() - started, stage="coverage")

            for diagnostic in diagnostics:
                inc("pipeline.quarantined", stage=diagnostic.stage)
            inc("pipeline.packs")
            inc("pipeline.phases_packed", len(surviving))
            annotate(
                root,
                phases=len(surviving),
                packages=len(plan.packages) if plan is not None else 0,
                quarantined=len(diagnostics),
            )
        return PackResult(
            workload=workload,
            profile=profile,
            regions=surviving,
            plan=plan,
            packed=packed,
            coverage=coverage,
            diagnostics=diagnostics,
            validation=validation,
        )

    # -- quarantine machinery ---------------------------------------------
    def _screen_records(
        self,
        records: List[HotSpotRecord],
        diagnostics: List[PhaseDiagnostic],
    ) -> List[HotSpotRecord]:
        """Drop records with duplicate indexes (a redundant detection
        that slipped past the software filter)."""
        seen: Set[int] = set()
        unique: List[HotSpotRecord] = []
        for record in records:
            if record.index in seen:
                error = ProfileError(
                    f"duplicate record for phase #{record.index}",
                    phase=record.index,
                    hint="the software similarity filter should have "
                         "rejected this detection; keeping the first",
                )
                if self.strict:
                    raise error
                diagnostics.append(
                    PhaseDiagnostic.from_exception("profile", error)
                )
                continue
            seen.add(record.index)
            unique.append(record)
        return unique

    def _identify_surviving(
        self,
        workload: Workload,
        profile: ProfileResult,
        records: List[HotSpotRecord],
        diagnostics: List[PhaseDiagnostic],
    ) -> List[HotRegion]:
        locate = branch_locator_from_image(profile.image)
        regions: List[HotRegion] = []
        for record in records:
            try:
                regions.append(identify_region(
                    workload.program, record, locate, self.region_config
                ))
            except ReproError as exc:
                if self.strict:
                    raise
                diagnostics.append(PhaseDiagnostic.from_exception(
                    "identify", exc, phase=record.index
                ))
        return regions

    def _attempt(
        self,
        workload: Workload,
        regions: List[HotRegion],
        diagnostics: List[PhaseDiagnostic],
    ) -> Tuple[PackagedProgramPlan, PackedProgram, Optional[object], Set[int]]:
        """One construct→optimize→rewrite→validate attempt.

        Returns the plan, the packed program (``None``-safe only when
        ``failed`` is non-empty), the validation report, and the set of
        phase indexes to quarantine before retrying.  In strict mode
        any failure raises instead.
        """
        failed: Set[int] = set()

        started = time.perf_counter()
        with span("pipeline.pack", regions=len(regions)) as pack_span:
            per_region: List[RegionPackages] = []
            for region in regions:
                index = region.record.index
                try:
                    per_region.append(construct_packages(region))
                except ReproError as exc:
                    if self.strict:
                        raise
                    diagnostics.append(PhaseDiagnostic.from_exception(
                        "construct", exc, phase=index
                    ))
                    failed.add(index)
            if failed:
                observe("pipeline.stage.seconds",
                        time.perf_counter() - started, stage="pack")
                return None, None, None, failed

            plan = assemble_plan(per_region, link=self.link,
                                 ordering=self.ordering)

            if self.optimize:
                from repro.optimize.passes import (
                    optimize_package,
                    region_taken_probabilities,
                )

                taken_prob = region_taken_probabilities(regions)
                for package in plan.packages:
                    try:
                        optimize_package(
                            package, taken_prob, enable_classic=self.classic
                        )
                    except Exception as exc:
                        if self.strict:
                            raise
                        diagnostics.append(PhaseDiagnostic.from_exception(
                            "optimize", exc, phase=package.region_index
                        ))
                        failed.add(package.region_index)
            annotate(
                pack_span,
                packages=len(plan.packages),
                package_instructions=sum(
                    p.static_size() for p in plan.packages
                ),
            )
        observe("pipeline.stage.seconds",
                time.perf_counter() - started, stage="pack")
        if failed:
            return plan, None, None, failed

        started = time.perf_counter()
        with span("pipeline.rewrite") as rewrite_span:
            try:
                packed = rewrite_program(workload.program, plan)
            except RewriteError as exc:
                observe("pipeline.stage.seconds",
                        time.perf_counter() - started, stage="rewrite")
                if self.strict:
                    raise
                diagnostics.append(
                    PhaseDiagnostic.from_exception("rewrite", exc)
                )
                if exc.phase is not None:
                    failed.add(exc.phase)
                else:
                    failed.update(r.record.index for r in regions)
                return plan, None, None, failed
            bytes_rewritten = packed.package_static_size() * 8
            annotate(rewrite_span,
                     static_size=packed.package_static_size(),
                     bytes_rewritten=bytes_rewritten)
        observe("pipeline.stage.seconds",
                time.perf_counter() - started, stage="rewrite")
        inc("pipeline.bytes_rewritten", bytes_rewritten)

        validation = None
        if self.validate:
            from .validate import validate_packed, validate_plan

            started = time.perf_counter()
            with span("pipeline.validate") as validate_span:
                validation = validate_plan(plan, workload.program)
                validation.merge(validate_packed(packed))
                annotate(validate_span, checks=validation.checks,
                         ok=validation.ok)
            observe("pipeline.stage.seconds",
                    time.perf_counter() - started, stage="validate")
            inc("pipeline.validation_checks", validation.checks)
            if not validation.ok:
                if self.strict:
                    validation.raise_if_failed()
                for issue in validation.issues:
                    diagnostics.append(PhaseDiagnostic(
                        stage="validate",
                        error=issue.render(),
                        phase=issue.phase,
                        exception_type="ValidationIssue",
                    ))
                attributable = validation.failing_phases()
                if attributable:
                    failed.update(attributable)
                # Non-attributable issues are reported but do not
                # quarantine: dropping arbitrary phases would not fix
                # them, and the packed program still executes.
        return plan, packed, validation, failed

    def _measure(
        self,
        workload: Workload,
        packed: PackedProgram,
        diagnostics: List[PhaseDiagnostic],
    ) -> CoverageResult:
        try:
            return measure_coverage(workload, packed)
        except Exception as exc:
            if self.strict:
                raise
            diagnostics.append(
                PhaseDiagnostic.from_exception("coverage", exc)
            )
            return CoverageResult(
                package_instructions=0,
                original_instructions=0,
                branches=0,
                launch_entries=0,
            )
