"""Execution-coverage measurement (paper section 5.1, Figure 8).

"Our emulator tabulated the number of dynamic instructions executed in
the packages and in original code and computed the percentage spent in
the packages."

The packed program's conditional-branch stream is identical to the
original run's (copies resolve behaviour through origin uids), so the
coverage run simply re-executes the workload over the packed program
and classifies dynamic instructions by the block they came from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.engine.compiled import ReplayDivergence, compiled_enabled, run_workload
from repro.engine.executor import ExecutionSummary
from repro.engine.trace_cache import traced_run
from repro.workloads.base import Workload

from .rewriter import PackedProgram


@dataclass
class CoverageResult:
    """Dynamic instruction split between packages and original code."""

    package_instructions: int
    original_instructions: int
    branches: int
    launch_entries: int

    @property
    def total_instructions(self) -> int:
        return self.package_instructions + self.original_instructions

    @property
    def package_fraction(self) -> float:
        total = self.total_instructions
        return self.package_instructions / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"<CoverageResult {self.package_fraction:.1%} of "
            f"{self.total_instructions} instructions in packages>"
        )


def classify_summary(
    packed: PackedProgram, summary: ExecutionSummary
) -> CoverageResult:
    """Split a finished run's dynamic instructions by code section."""
    package_uids = packed.package_block_uids()
    sizes: Dict[int, int] = {}
    launch_uids = set()
    for function in packed.program.functions.values():
        for block in function.blocks:
            sizes[block.uid] = block.size()
            if block.meta.get("launch_trampoline"):
                launch_uids.add(block.uid)

    package_count = 0
    original_count = 0
    launch_entries = 0
    for uid, visits in summary.block_visits.items():
        weight = visits * sizes[uid]
        if uid in package_uids:
            package_count += weight
        else:
            original_count += weight
        if uid in launch_uids:
            launch_entries += visits
    return CoverageResult(
        package_instructions=package_count,
        original_instructions=original_count,
        branches=summary.branches,
        launch_entries=launch_entries,
    )


def measure_coverage(workload: Workload, packed: PackedProgram) -> CoverageResult:
    """Run the workload over the packed program and classify it.

    Under the compiled engine the packed run *replays* the original
    program's cached branch stream (identical by construction — copies
    resolve behaviour through origin uids) with per-event uid
    verification, skipping outcome computation entirely.  A
    :class:`ReplayDivergence` — a genuinely mis-rewritten program —
    falls back to a computed run so the divergence surfaces through the
    normal coverage/differential numbers rather than an engine error.
    """
    if compiled_enabled():
        trace = traced_run(workload)
        try:
            summary = run_workload(workload, program=packed.program,
                                   replay=trace)
        except ReplayDivergence:
            summary = workload.run(program=packed.program)
    else:
        summary = workload.run(program=packed.program)
    return classify_summary(packed, summary)
