"""Execution-coverage measurement (paper section 5.1, Figure 8).

"Our emulator tabulated the number of dynamic instructions executed in
the packages and in original code and computed the percentage spent in
the packages."

The packed program's conditional-branch stream is identical to the
original run's (copies resolve behaviour through origin uids), so the
coverage run simply re-executes the workload over the packed program
and classifies dynamic instructions by the block they came from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from repro.engine.compiled import ReplayDivergence, compiled_enabled, run_workload
from repro.engine.executor import ExecutionSummary
from repro.engine.trace_cache import traced_run
from repro.workloads.base import Workload

from .rewriter import PackedProgram


@dataclass
class CoverageResult:
    """Dynamic instruction split between packages and original code."""

    package_instructions: int
    original_instructions: int
    branches: int
    launch_entries: int

    @property
    def total_instructions(self) -> int:
        return self.package_instructions + self.original_instructions

    @property
    def package_fraction(self) -> float:
        total = self.total_instructions
        return self.package_instructions / total if total else 0.0

    def to_dict(self) -> Dict:
        return {
            "package_fraction": self.package_fraction,
            "package_instructions": self.package_instructions,
            "original_instructions": self.original_instructions,
            "branches": self.branches,
            "launch_entries": self.launch_entries,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"<CoverageResult {self.package_fraction:.1%} of "
            f"{self.total_instructions} instructions in packages>"
        )


def classify_summary(
    packed: PackedProgram, summary: ExecutionSummary
) -> CoverageResult:
    """Split a finished run's dynamic instructions by code section."""
    package_uids = packed.package_block_uids()
    sizes: Dict[int, int] = {}
    launch_uids = set()
    for function in packed.program.functions.values():
        for block in function.blocks:
            sizes[block.uid] = block.size()
            if block.meta.get("launch_trampoline"):
                launch_uids.add(block.uid)

    package_count = 0
    original_count = 0
    launch_entries = 0
    for uid, visits in summary.block_visits.items():
        weight = visits * sizes[uid]
        if uid in package_uids:
            package_count += weight
        else:
            original_count += weight
        if uid in launch_uids:
            launch_entries += visits
    return CoverageResult(
        package_instructions=package_count,
        original_instructions=original_count,
        branches=summary.branches,
        launch_entries=launch_entries,
    )


def project_coverage(
    workload: Workload,
    selected_uids: Iterable[int],
    summary: Optional[ExecutionSummary] = None,
) -> CoverageResult:
    """Project a selected-instruction set onto an *original-program* run.

    :func:`measure_coverage` executes the packed binary, which is only
    semantically faithful under the behaviour stream it was profiled
    from (outcomes are occurrence-indexed).  When the question is "how
    well would the shipped packages cover *today's* behaviour?" — the
    drift controller's question — the honest measurement runs the
    original program under the current behaviour and classifies each
    dynamic instruction by whether its uid was selected into a package.
    This is exactly the paper's section 5.1 tabulation, computed from
    the profile side instead of the rewritten binary.

    ``selected_uids`` is an instruction-origin uid set (e.g.
    :func:`repro.regions.region.selected_origins` over a pack's
    regions).  Pass ``summary`` to classify an existing run instead of
    re-executing.  ``launch_entries`` is 0: no packed binary runs here.
    """
    selected: Set[int] = set(selected_uids)
    sizes: Dict[int, int] = {}
    chosen: Dict[int, int] = {}
    for function in workload.program.functions.values():
        for block in function.blocks:
            sizes[block.uid] = block.size()
            chosen[block.uid] = sum(
                1 for inst in block.instructions if inst.uid in selected
            )
    if summary is None:
        summary = workload.run()
    package_count = 0
    original_count = 0
    for uid, visits in summary.block_visits.items():
        inside = chosen.get(uid, 0)
        package_count += visits * inside
        original_count += visits * (sizes.get(uid, 0) - inside)
    return CoverageResult(
        package_instructions=package_count,
        original_instructions=original_count,
        branches=summary.branches,
        launch_entries=0,
    )


def measure_coverage(workload: Workload, packed: PackedProgram) -> CoverageResult:
    """Run the workload over the packed program and classify it.

    Under the compiled engine the packed run *replays* the original
    program's cached branch stream (identical by construction — copies
    resolve behaviour through origin uids) with per-event uid
    verification, skipping outcome computation entirely.  A
    :class:`ReplayDivergence` — a genuinely mis-rewritten program —
    falls back to a computed run so the divergence surfaces through the
    normal coverage/differential numbers rather than an engine error.
    """
    if compiled_enabled():
        trace = traced_run(workload)
        try:
            summary = run_workload(workload, program=packed.program,
                                   replay=trace)
        except ReplayDivergence:
            summary = workload.run(program=packed.program)
    else:
        summary = workload.run(program=packed.program)
    return classify_summary(packed, summary)
