"""Post-link rewriting: deploy packages and patch launch points.

"Control transitions are established between the original program and
the extracted packages" (paper section 3): every original-code transfer
into an *entry block* of a package-owning location becomes a *launch
point* into the package.  When several packages share an entry, "the
'left-most' package in the ordering is given precedence".

The rewriter never mutates the profiled program: it clones it (cloned
instructions remember their origin uid, keeping the behavioral engine
aligned), appends the package functions, and patches:

* conditional branches and jumps targeting an entry location,
* call instructions targeting a function whose prologue is an entry
  (the patched call enters the package block directly), and
* fallthrough paths into an entry location, which get a one-jump
  *launch trampoline* spliced in front of the entry block.

``PackedProgram.link_image()`` additionally lowers the whole result to
a binary image, demonstrating that every patch is representable as a
4-byte displacement write (see :mod:`repro.isa.encoding`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import RewriteError
from repro.isa.instructions import Instruction, Opcode
from repro.packages.construct import PackagedProgramPlan
from repro.packages.package import Location
from repro.program.block import BasicBlock
from repro.program.cfg import cross_function_target
from repro.program.function import Function
from repro.program.image import ProgramImage
from repro.program.program import Program, ProgramError


def clone_program(program: Program) -> Program:
    """Deep-copy a program; copies remember their origins.

    Unlike :meth:`BasicBlock.clone` (built for package extraction,
    where a fresh identity is the point), a program clone keeps each
    block's calling context, continuations, and ``meta`` — a clone of
    a packed program must still carry its launch-trampoline markers or
    the image round-trip validator has nothing to check.
    """
    functions = []
    for function in program.functions.values():
        blocks = []
        for block in function.blocks:
            copy = block.clone(block.label, context=block.context)
            copy.continuations = block.continuations
            copy.meta = dict(block.meta)
            blocks.append(copy)
        functions.append(Function(function.name, blocks, function.entry_label))
    return Program(functions, entry=program.entry)


def _share_program(program: Program) -> Program:
    """Copy-on-write clone for rewriting: fresh Program and Function
    shells (private CFGs and block lists) over *shared* block objects.

    The rewriter patches only a handful of launch-point blocks per
    pack, so deep-copying every instruction (see :func:`clone_program`)
    is almost entirely wasted work — instead, each block the rewriter
    wants to change is first privatized with :func:`_cow_block`.
    Nothing downstream mutates original-code blocks in place: the
    optimizer only touches package functions, and trampolines are
    fresh blocks.

    The CFG object is shared as well: CFGs are only ever replaced
    wholesale (``Function.replace_blocks`` installs a brand-new graph),
    never edited, so a function the rewriter leaves alone can keep the
    original's arc structure without re-deriving it.
    """
    functions = []
    for function in program.functions.values():
        copy = object.__new__(Function)
        copy.name = function.name
        copy.cfg = function.cfg
        functions.append(copy)
    return Program(functions, entry=program.entry)


def _cow_block(block: BasicBlock) -> BasicBlock:
    """Private copy of a shared block, about to be patched.

    Keeps the block uid and instruction objects: this is the *same*
    binary block, merely un-aliased from the profiled program so the
    patch cannot leak into it.  The patch itself replaces the
    terminator entry in the fresh ``instructions`` list.
    """
    copy = object.__new__(BasicBlock)
    copy.label = block.label
    copy.instructions = list(block.instructions)
    copy.uid = block.uid
    copy.origin = block.origin
    copy.context = block.context
    copy.continuations = block.continuations
    copy.meta = dict(block.meta)
    copy._size_memo = block._size_memo
    return copy


@dataclass
class RewriteStats:
    """What the rewriter changed."""

    branch_patches: int = 0
    jump_patches: int = 0
    call_patches: int = 0
    trampolines: int = 0

    @property
    def launch_points(self) -> int:
        return (
            self.branch_patches
            + self.jump_patches
            + self.call_patches
            + self.trampolines
        )


@dataclass
class PackedProgram:
    """The rewritten binary: original code + phase packages."""

    program: Program
    plan: PackagedProgramPlan
    launch_map: Dict[Location, Tuple[str, str]]
    stats: RewriteStats
    original_static_size: int
    package_names: Set[str] = field(default_factory=set)

    # -- classification -------------------------------------------------
    def package_block_uids(self) -> Set[int]:
        uids = set()
        for name in self.package_names:
            for block in self.program.functions[name].blocks:
                uids.add(block.uid)
        return uids

    def package_static_size(self) -> int:
        return sum(
            self.program.functions[name].size() for name in self.package_names
        )

    def static_size_increase(self) -> float:
        """Fractional growth of static instructions (Table 3's '% Incr
        in size'), including launch trampolines."""
        packed_total = self.program.static_size()
        return (packed_total - self.original_static_size) / self.original_static_size

    def link_image(self) -> ProgramImage:
        """Lower the packed program to a concrete binary image."""
        return ProgramImage(self.program)


def _launch_assignments(plan: PackagedProgramPlan) -> Dict[Location, Tuple[str, str]]:
    """Entry location -> (package name, package entry label).

    Group order, then left-to-right within the ordered group; the first
    (left-most) package claims contested entry locations.
    """
    launch: Dict[Location, Tuple[str, str]] = {}
    for group in plan.groups:
        for package in group.packages:
            for entry_label, location in package.entry_map.items():
                launch.setdefault(location, (package.name, entry_label))
    return launch


def rewrite_program(
    original: Program, plan: PackagedProgramPlan
) -> PackedProgram:
    """Produce the packed program for an already-linked package plan."""
    packed = _share_program(original)
    launch = _launch_assignments(plan)
    stats = RewriteStats()

    # 1. Append the package functions.
    package_names: Set[str] = set()
    for package in plan.packages:
        try:
            function = package.build_function()
            packed.add_function(function)
        except (ProgramError, IndexError, KeyError, ValueError) as exc:
            raise RewriteError(
                f"cannot deploy package {package.name!r} "
                f"({type(exc).__name__}: {exc})",
                package=package.name,
                phase=package.region_index,
            ) from exc
        package_names.add(function.name)

    # 2. Patch explicit branch/jump transfers into entry locations.
    #    Blocks are shared with the profiled program (copy-on-write),
    #    so each patched block is privatized first and the function's
    #    block list reinstalled once, keeping its CFG coherent.
    for function in list(packed.functions.values()):
        if function.name in package_names:
            continue
        blocks = function.blocks
        new_blocks: Optional[List[BasicBlock]] = None
        for index, block in enumerate(blocks):
            term = block.terminator
            if term is None:
                continue
            if term.is_conditional_branch or term.opcode is Opcode.JUMP:
                key = (function.name, term.target)
                dest = launch.get(key)
                if dest is not None:
                    patched = _cow_block(block)
                    patched.instructions[-1] = term.retargeted(
                        cross_function_target(*dest)
                    )
                    if new_blocks is None:
                        new_blocks = list(blocks)
                    new_blocks[index] = patched
                    if term.is_conditional_branch:
                        stats.branch_patches += 1
                    else:
                        stats.jump_patches += 1
        if new_blocks is not None:
            function.replace_blocks(new_blocks)

    # 3. Entry locations that are function prologues get a launch
    #    trampoline spliced in as the new function entry, so *every*
    #    call — from original code, from inside packages, from deep
    #    recursion — launches into the package.  (A real rewriter
    #    patches the function's entry address in the same way.)  Other
    #    entry locations reached by fallthrough get the trampoline
    #    spliced immediately in front of them.
    for (fn_name, label), dest in sorted(launch.items()):
        function = packed.functions.get(fn_name)
        if function is None:
            continue
        blocks = function.blocks
        index = next(
            (i for i, b in enumerate(blocks) if b.label == label), None
        )
        if index is None:
            continue
        trampoline = BasicBlock(
            f"{label}__lp",
            [Instruction(Opcode.JUMP, target=cross_function_target(*dest))],
            meta={"launch_trampoline": True},
        )
        if label == function.entry_label:
            function.replace_blocks(
                [trampoline] + blocks, entry_label=trampoline.label
            )
            stats.call_patches += 1
            continue
        if index == 0:
            continue
        previous = blocks[index - 1]
        prev_term = previous.terminator
        falls_through = (
            prev_term is None
            or prev_term.is_conditional_branch
            or prev_term.is_call
        )
        if not falls_through:
            continue
        new_blocks = blocks[:index] + [trampoline] + blocks[index:]
        function.replace_blocks(new_blocks)
        stats.trampolines += 1

    try:
        packed.validate()
    except ProgramError as exc:
        raise RewriteError(
            f"rewritten program failed validation: {exc}"
        ) from exc
    return PackedProgram(
        program=packed,
        plan=plan,
        launch_map=launch,
        stats=stats,
        original_static_size=original.static_size(),
        package_names=package_names,
    )
