"""Pinned micro-benchmark suite: ``python -m repro bench``.

Times the performance-critical layers on a fixed workload
(:data:`BENCH_WORKLOAD`, the suite's smallest dynamic footprint) so
engine regressions are caught by number, not anecdote:

* ``interpreter_loop`` — the reference :class:`BlockExecutor` run;
* ``compiled_loop`` — the same run under the compiled trace engine;
* ``detector_observe`` — per-event Hot Spot Detector throughput;
* ``detector_observe_stream`` — the chunked detector fast path;
* ``pack_pipeline`` — one full ``VacuumPacker.pack`` (cold caches);
* ``fault_campaign`` — the end-to-end campaign driver on one entry
  (the acceptance workload for this engine's speedup target);
* ``batched_fleet`` — the 16-client service smoke shape: one
  :class:`~repro.engine.batched.BatchedExecutor` batch vs sixteen
  sequential compiled runs (the batched engine's speedup target);
* ``batched_grid`` — clients × phases scalability grid for the
  batched engine on synthetic workloads.

Results are written to ``BENCH_<date>.json``; ``--check BASELINE``
compares against a committed baseline and fails on a >25% regression
(the CI smoke job pins ``benchmarks/results/baseline.json``).  Each
invocation runs against a private temporary trace-cache directory so
numbers never depend on leftover cache state.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

#: The timing workload: smallest dynamic footprint in the suite.
BENCH_WORKLOAD = ("134.perl", "C")

#: Branch events for the detector throughput benchmarks.
_DETECTOR_EVENTS = 200_000

#: Regression gate used by ``--check`` and the CI smoke job.
DEFAULT_THRESHOLD = 0.25


def _load_bench_workload():
    from repro.workloads.suite import load_benchmark

    benchmark, input_name = BENCH_WORKLOAD
    return load_benchmark(benchmark, input_name)


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# individual benchmarks
# ---------------------------------------------------------------------------

def _bench_interpreter(repeats: int) -> Dict[str, object]:
    from repro.engine.executor import BlockExecutor

    workload = _load_bench_workload()

    def once() -> None:
        BlockExecutor(
            workload.program, workload.behavior, workload.phase_script,
            limits=workload.limits,
        ).run()

    seconds = _best_of(once, repeats)
    summary = workload.run()
    return {
        "seconds": seconds,
        "branches": summary.branches,
        "branches_per_second": summary.branches / seconds if seconds else 0.0,
    }


def _bench_compiled(repeats: int) -> Dict[str, object]:
    from repro.engine.compiled import CompiledExecutor

    workload = _load_bench_workload()

    def once() -> None:
        CompiledExecutor(
            workload.program, workload.behavior, workload.phase_script,
            limits=workload.limits,
        ).run()

    once()  # warm the per-program/behavior memos: steady-state cost
    seconds = _best_of(once, repeats)
    summary = workload.run()
    return {
        "seconds": seconds,
        "branches": summary.branches,
        "branches_per_second": summary.branches / seconds if seconds else 0.0,
    }


def _detector_stream() -> Tuple[List[int], List[bool]]:
    from repro.engine.trace_cache import image_for, traced_run

    workload = _load_bench_workload()
    trace = traced_run(workload)
    address_of = image_for(workload.program).instruction_address
    uids = trace.uids[:_DETECTOR_EVENTS].tolist()
    takens = trace.taken[:_DETECTOR_EVENTS].tolist()
    addresses = [address_of[uid] for uid in uids]
    return addresses, takens


def _bench_detector(repeats: int) -> Dict[str, object]:
    from repro.hsd.detector import HotSpotDetector

    addresses, takens = _detector_stream()

    def once() -> None:
        detector = HotSpotDetector()
        observe = detector.observe
        for address, taken in zip(addresses, takens):
            observe(address, taken)

    seconds = _best_of(once, repeats)
    return {
        "seconds": seconds,
        "events": len(addresses),
        "events_per_second": len(addresses) / seconds if seconds else 0.0,
    }


def _bench_detector_stream(repeats: int) -> Dict[str, object]:
    from repro.hsd.detector import HotSpotDetector

    addresses, takens = _detector_stream()

    def once() -> None:
        HotSpotDetector().observe_stream(addresses, takens)

    seconds = _best_of(once, repeats)
    return {
        "seconds": seconds,
        "events": len(addresses),
        "events_per_second": len(addresses) / seconds if seconds else 0.0,
    }


def _bench_pack(repeats: int) -> Dict[str, object]:
    from repro.postlink.vacuum import VacuumPacker

    workload = _load_bench_workload()
    holder: Dict[str, object] = {}

    def once() -> None:
        holder["result"] = VacuumPacker().pack(workload)

    seconds = _best_of(once, repeats)
    result = holder["result"]
    return {
        "seconds": seconds,
        "coverage": result.coverage.package_fraction,
        "phases": len(result.regions),
    }


def _bench_campaign(trials: int) -> Dict[str, object]:
    from repro.experiments.fault_campaign import run_fault_campaign
    from repro.workloads.suite import SUITE

    benchmark, input_name = BENCH_WORKLOAD
    entry = next(
        e for e in SUITE
        if e.benchmark == benchmark and e.input_name == input_name
    )
    start = time.perf_counter()
    report = run_fault_campaign(entries=[entry], seed=0, trials=trials)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "trials": trials,
        "survival_rate": report.survival_rate,
    }


def _bench_batched_fleet(repeats: int) -> Dict[str, object]:
    from repro.engine.batched import BatchedExecutor, row_behavior
    from repro.engine.compiled import CompiledExecutor

    workload = _load_bench_workload()
    seeds = list(range(16))

    def batched() -> None:
        BatchedExecutor(
            workload.program, workload.behavior, workload.phase_script,
            seeds=seeds, limits=workload.limits,
        ).run_traced()

    def sequential() -> None:
        for seed in seeds:
            CompiledExecutor(
                workload.program,
                row_behavior(workload.behavior, seed),
                workload.phase_script,
                limits=workload.limits,
            ).run()

    batched()  # warm the shared tables and kernel: steady-state cost
    seconds = _best_of(batched, repeats)
    sequential_seconds = _best_of(sequential, repeats)
    summary = workload.run()
    branches = summary.branches * len(seeds)
    return {
        "seconds": seconds,
        "sequential_seconds": sequential_seconds,
        "clients": len(seeds),
        "branches": branches,
        "branches_per_second": branches / seconds if seconds else 0.0,
        "speedup": sequential_seconds / seconds if seconds else 0.0,
    }


#: Axes of the batched-engine scalability grid (full mode).
GRID_CLIENTS = (4, 16, 64)
GRID_PHASES = (2, 4, 8)


def _bench_batched_grid(quick: bool) -> Dict[str, object]:
    from repro.engine.batched import BatchedExecutor, row_behavior
    from repro.engine.compiled import CompiledExecutor
    from repro.workloads.synthetic import (
        MIN_PHASE_BRANCHES,
        SyntheticSpec,
        build_workload,
    )

    clients_axis = GRID_CLIENTS[:2] if quick else GRID_CLIENTS
    phases_axis = GRID_PHASES[:2] if quick else GRID_PHASES
    cells: List[Dict[str, object]] = []
    start = time.perf_counter()
    for phases in phases_axis:
        spec = SyntheticSpec(
            name=f"bench.grid.p{phases}",
            seed=29 + phases,
            phases=phases,
            work_functions=4,
            functions_per_phase=2,
            branch_budget=phases * MIN_PHASE_BRANCHES,
        )
        workload = build_workload(spec)
        for clients in clients_axis:
            seeds = list(range(clients))

            def batched() -> None:
                BatchedExecutor(
                    workload.program, workload.behavior,
                    workload.phase_script, seeds=seeds,
                    limits=workload.limits,
                ).run_traced()

            def sequential() -> None:
                for seed in seeds:
                    CompiledExecutor(
                        workload.program,
                        row_behavior(workload.behavior, seed),
                        workload.phase_script,
                        limits=workload.limits,
                    ).run()

            batched()  # warm per-cell tables before timing
            batched_seconds = _best_of(batched, 1)
            sequential_seconds = _best_of(sequential, 1)
            cells.append({
                "clients": clients,
                "phases": phases,
                "batched_seconds": round(batched_seconds, 6),
                "sequential_seconds": round(sequential_seconds, 6),
                "speedup": round(
                    sequential_seconds / batched_seconds, 3
                ) if batched_seconds else 0.0,
            })
    return {
        "seconds": time.perf_counter() - start,
        "clients_axis": list(clients_axis),
        "phases_axis": list(phases_axis),
        "cells": cells,
    }


# ---------------------------------------------------------------------------
# suite driver
# ---------------------------------------------------------------------------

def run_bench(quick: bool = False) -> Dict[str, object]:
    """Run the pinned suite; ``quick`` uses single repetitions and a
    shorter campaign (the CI smoke configuration)."""
    repeats = 1 if quick else 3
    campaign_trials = 2 if quick else 5

    previous_cache = os.environ.get("REPRO_TRACE_CACHE")
    results: Dict[str, Dict[str, object]] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        os.environ["REPRO_TRACE_CACHE"] = cache_dir
        from repro.engine.trace_cache import reset_default_cache

        reset_default_cache()
        try:
            results["interpreter_loop"] = _bench_interpreter(repeats)
            results["compiled_loop"] = _bench_compiled(repeats)
            results["detector_observe"] = _bench_detector(repeats)
            results["detector_observe_stream"] = _bench_detector_stream(
                repeats
            )
            results["pack_pipeline"] = _bench_pack(repeats)
            results["fault_campaign"] = _bench_campaign(campaign_trials)
            results["batched_fleet"] = _bench_batched_fleet(repeats)
            results["batched_grid"] = _bench_batched_grid(quick)
        finally:
            if previous_cache is None:
                os.environ.pop("REPRO_TRACE_CACHE", None)
            else:
                os.environ["REPRO_TRACE_CACHE"] = previous_cache
            reset_default_cache()

    return {
        "date": datetime.date.today().isoformat(),
        "quick": quick,
        "workload": "/".join(BENCH_WORKLOAD),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine": os.environ.get("REPRO_ENGINE", "compiled"),
        "results": results,
    }


def default_report_path(report: Dict[str, object]) -> str:
    return f"BENCH_{report['date']}.json"


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(report: Dict[str, object]) -> str:
    lines = [
        f"bench {report['date']} ({'quick' if report['quick'] else 'full'}) "
        f"workload={report['workload']} engine={report['engine']}"
    ]
    for name, result in sorted(report["results"].items()):
        extras = " ".join(
            f"{k}={v:,.0f}" if isinstance(v, float) and v > 100 else f"{k}={v}"
            for k, v in sorted(result.items())
            if k != "seconds" and not isinstance(v, (list, dict))
        )
        lines.append(f"  {name:26s} {result['seconds']:8.3f}s  {extras}")
        for cell in result.get("cells", ()):
            lines.append(
                f"    clients={cell['clients']:3d} phases={cell['phases']}  "
                f"batched={cell['batched_seconds']:8.3f}s  "
                f"sequential={cell['sequential_seconds']:8.3f}s  "
                f"speedup={cell['speedup']:.1f}x"
            )
    return "\n".join(lines)


def check_report(
    report: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Regressions of ``report`` vs ``baseline`` beyond ``threshold``.

    Only benchmarks present in both reports are compared, so adding a
    benchmark never breaks an old baseline.
    """
    problems: List[str] = []
    base_results = baseline.get("results", {})
    for name, result in report["results"].items():
        base = base_results.get(name)
        if not base:
            continue
        base_seconds = float(base["seconds"])
        seconds = float(result["seconds"])
        if base_seconds <= 0:
            continue
        ratio = seconds / base_seconds
        if ratio > 1.0 + threshold:
            problems.append(
                f"{name}: {seconds:.3f}s vs baseline {base_seconds:.3f}s "
                f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
            )
    return problems


def main_bench(
    quick: bool = False,
    out: Optional[str] = None,
    check: Optional[str] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> int:
    report = run_bench(quick=quick)
    print(render_report(report))
    path = out or default_report_path(report)
    write_report(report, path)
    print(f"(written to {path})")
    if check:
        with open(check) as handle:
            baseline = json.load(handle)
        problems = check_report(report, baseline, threshold)
        if problems:
            print(f"REGRESSION vs {check}:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"no regressions vs {check} (threshold {threshold:.0%})")
    return 0
