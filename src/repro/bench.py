"""Pinned micro-benchmark suite: ``python -m repro bench``.

Times the performance-critical layers on a fixed workload
(:data:`BENCH_WORKLOAD`, the suite's smallest dynamic footprint) so
engine regressions are caught by number, not anecdote:

* ``interpreter_loop`` — the reference :class:`BlockExecutor` run;
* ``compiled_loop`` — the same run under the compiled trace engine;
* ``detector_observe`` — per-event Hot Spot Detector throughput;
* ``detector_observe_stream`` — the chunked detector fast path;
* ``pack_pipeline`` — one full ``VacuumPacker.pack`` (cold caches);
* ``fault_campaign`` — the end-to-end campaign driver on one entry
  (the acceptance workload for this engine's speedup target);
* ``batched_fleet`` — the 16-client service smoke shape: one
  :class:`~repro.engine.batched.BatchedExecutor` batch vs sixteen
  sequential compiled runs (the batched engine's speedup target);
* ``batched_grid`` — clients × phases scalability grid for the
  batched engine on synthetic workloads;
* ``agg_scale`` — streaming vs from-scratch aggregation at fleet
  scale (the incremental aggregator's speedup target);
* ``http_ingest`` — daemon NDJSON ingest over localhost vs direct
  ``ingest_paths``, docs/sec and overhead ratio;
* ``http_concurrency`` — the multi-tenant daemon under N uploader
  threads × 3 interleaved tenants: docs/sec per axis point, with
  per-tenant wire digests checked against local streaming merges.

Results are written to ``BENCH_<date>.json``; ``--check BASELINE``
compares against a committed baseline and fails on a >25% regression
(the CI smoke job pins ``benchmarks/results/baseline.json``).  Each
invocation runs against a private temporary trace-cache directory so
numbers never depend on leftover cache state.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

#: The timing workload: smallest dynamic footprint in the suite.
BENCH_WORKLOAD = ("134.perl", "C")

#: Branch events for the detector throughput benchmarks.
_DETECTOR_EVENTS = 200_000

#: Regression gate used by ``--check`` and the CI smoke job.
DEFAULT_THRESHOLD = 0.25


def _load_bench_workload():
    from repro.workloads.suite import load_benchmark

    benchmark, input_name = BENCH_WORKLOAD
    return load_benchmark(benchmark, input_name)


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# individual benchmarks
# ---------------------------------------------------------------------------

def _bench_interpreter(repeats: int) -> Dict[str, object]:
    from repro.engine.executor import BlockExecutor

    workload = _load_bench_workload()

    def once() -> None:
        BlockExecutor(
            workload.program, workload.behavior, workload.phase_script,
            limits=workload.limits,
        ).run()

    seconds = _best_of(once, repeats)
    summary = workload.run()
    return {
        "seconds": seconds,
        "branches": summary.branches,
        "branches_per_second": summary.branches / seconds if seconds else 0.0,
    }


def _bench_compiled(repeats: int) -> Dict[str, object]:
    from repro.engine.compiled import CompiledExecutor

    workload = _load_bench_workload()

    def once() -> None:
        CompiledExecutor(
            workload.program, workload.behavior, workload.phase_script,
            limits=workload.limits,
        ).run()

    once()  # warm the per-program/behavior memos: steady-state cost
    seconds = _best_of(once, repeats)
    summary = workload.run()
    return {
        "seconds": seconds,
        "branches": summary.branches,
        "branches_per_second": summary.branches / seconds if seconds else 0.0,
    }


def _detector_stream() -> Tuple[List[int], List[bool]]:
    from repro.engine.trace_cache import image_for, traced_run

    workload = _load_bench_workload()
    trace = traced_run(workload)
    address_of = image_for(workload.program).instruction_address
    uids = trace.uids[:_DETECTOR_EVENTS].tolist()
    takens = trace.taken[:_DETECTOR_EVENTS].tolist()
    addresses = [address_of[uid] for uid in uids]
    return addresses, takens


def _bench_detector(repeats: int) -> Dict[str, object]:
    from repro.hsd.detector import HotSpotDetector

    addresses, takens = _detector_stream()

    def once() -> None:
        detector = HotSpotDetector()
        observe = detector.observe
        for address, taken in zip(addresses, takens):
            observe(address, taken)

    seconds = _best_of(once, repeats)
    return {
        "seconds": seconds,
        "events": len(addresses),
        "events_per_second": len(addresses) / seconds if seconds else 0.0,
    }


def _bench_detector_stream(repeats: int) -> Dict[str, object]:
    from repro.hsd.detector import HotSpotDetector

    addresses, takens = _detector_stream()

    def once() -> None:
        HotSpotDetector().observe_stream(addresses, takens)

    seconds = _best_of(once, repeats)
    return {
        "seconds": seconds,
        "events": len(addresses),
        "events_per_second": len(addresses) / seconds if seconds else 0.0,
    }


def _bench_pack(repeats: int) -> Dict[str, object]:
    from repro.postlink.vacuum import VacuumPacker

    workload = _load_bench_workload()
    holder: Dict[str, object] = {}

    def once() -> None:
        holder["result"] = VacuumPacker().pack(workload)

    seconds = _best_of(once, repeats)
    result = holder["result"]
    return {
        "seconds": seconds,
        "coverage": result.coverage.package_fraction,
        "phases": len(result.regions),
    }


def _bench_campaign(trials: int) -> Dict[str, object]:
    from repro.experiments.fault_campaign import run_fault_campaign
    from repro.workloads.suite import SUITE

    benchmark, input_name = BENCH_WORKLOAD
    entry = next(
        e for e in SUITE
        if e.benchmark == benchmark and e.input_name == input_name
    )
    start = time.perf_counter()
    report = run_fault_campaign(entries=[entry], seed=0, trials=trials)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "trials": trials,
        "survival_rate": report.survival_rate,
    }


def _bench_batched_fleet(repeats: int) -> Dict[str, object]:
    from repro.engine.batched import BatchedExecutor, row_behavior
    from repro.engine.compiled import CompiledExecutor

    workload = _load_bench_workload()
    seeds = list(range(16))

    def batched() -> None:
        BatchedExecutor(
            workload.program, workload.behavior, workload.phase_script,
            seeds=seeds, limits=workload.limits,
        ).run_traced()

    def sequential() -> None:
        for seed in seeds:
            CompiledExecutor(
                workload.program,
                row_behavior(workload.behavior, seed),
                workload.phase_script,
                limits=workload.limits,
            ).run()

    batched()  # warm the shared tables and kernel: steady-state cost
    seconds = _best_of(batched, repeats)
    sequential_seconds = _best_of(sequential, repeats)
    summary = workload.run()
    branches = summary.branches * len(seeds)
    return {
        "seconds": seconds,
        "sequential_seconds": sequential_seconds,
        "clients": len(seeds),
        "branches": branches,
        "branches_per_second": branches / seconds if seconds else 0.0,
        "speedup": sequential_seconds / seconds if seconds else 0.0,
    }


#: Axes of the batched-engine scalability grid (full mode).
GRID_CLIENTS = (4, 16, 64)
GRID_PHASES = (2, 4, 8)


def _bench_batched_grid(quick: bool) -> Dict[str, object]:
    from repro.engine.batched import BatchedExecutor, row_behavior
    from repro.engine.compiled import CompiledExecutor
    from repro.workloads.synthetic import (
        MIN_PHASE_BRANCHES,
        SyntheticSpec,
        build_workload,
    )

    clients_axis = GRID_CLIENTS[:2] if quick else GRID_CLIENTS
    phases_axis = GRID_PHASES[:2] if quick else GRID_PHASES
    cells: List[Dict[str, object]] = []
    start = time.perf_counter()
    for phases in phases_axis:
        spec = SyntheticSpec(
            name=f"bench.grid.p{phases}",
            seed=29 + phases,
            phases=phases,
            work_functions=4,
            functions_per_phase=2,
            branch_budget=phases * MIN_PHASE_BRANCHES,
        )
        workload = build_workload(spec)
        for clients in clients_axis:
            seeds = list(range(clients))

            def batched() -> None:
                BatchedExecutor(
                    workload.program, workload.behavior,
                    workload.phase_script, seeds=seeds,
                    limits=workload.limits,
                ).run_traced()

            def sequential() -> None:
                for seed in seeds:
                    CompiledExecutor(
                        workload.program,
                        row_behavior(workload.behavior, seed),
                        workload.phase_script,
                        limits=workload.limits,
                    ).run()

            batched()  # warm per-cell tables before timing
            batched_seconds = _best_of(batched, 1)
            sequential_seconds = _best_of(sequential, 1)
            cells.append({
                "clients": clients,
                "phases": phases,
                "batched_seconds": round(batched_seconds, 6),
                "sequential_seconds": round(sequential_seconds, 6),
                "speedup": round(
                    sequential_seconds / batched_seconds, 3
                ) if batched_seconds else 0.0,
            })
    return {
        "seconds": time.perf_counter() - start,
        "clients_axis": list(clients_axis),
        "phases_axis": list(phases_axis),
        "cells": cells,
    }


#: Fleet sizes for the aggregation scalability bench (full mode).
AGG_CLIENTS = (1_000, 10_000, 100_000)
#: Fresh arrivals absorbed (with an up-to-date merged profile after
#: each) at every fleet size.
AGG_ARRIVALS = 16
#: The ``repro bench agg_scale`` acceptance floor at the 1k shape.
AGG_SPEEDUP_TARGET = 10.0


def _bench_agg_scale(quick: bool) -> Dict[str, object]:
    """Streaming vs from-scratch aggregation, clients × arrival cost.

    Seeds the shape with a real fleet (:data:`BENCH_WORKLOAD`, batched
    engine), then synthesizes N clients by deterministically scaling
    each base profile's counters — address sets and branch biases are
    preserved, so the section 3.1 clustering is identical and only the
    execution weights vary.  The measured contest is the steady-state
    service loop: absorb :data:`AGG_ARRIVALS` fresh uploads with an
    up-to-date merged profile after each one.  Streaming pays
    O(phases) + snapshot per upload; batch re-clusters all N documents
    ever seen per upload.  Batch is timed at the 1k shape (the
    acceptance shape — larger shapes are streaming-only, since batch
    cost is the measured 1k number scaled by N).  The two final merged
    profiles must satisfy the determinism contract (``equivalent``).
    """
    from repro.hsd.records import BranchProfile, HotSpotRecord
    from repro.service.aggregate import (
        ClientRun,
        IncrementalAggregator,
        IngestResult,
        ingest_paths,
        merge_runs,
        profiles_equivalent,
    )
    from repro.service.clients import simulate_fleet

    benchmark, input_name = BENCH_WORKLOAD
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-agg-bench-") as out_dir:
        simulate_fleet(
            benchmark, input_name, runs=16, out_dir=out_dir, epochs=4
        )
        base_runs = ingest_paths(
            sorted(os.path.join(out_dir, p) for p in os.listdir(out_dir))
        ).runs
    if not base_runs:
        raise RuntimeError("agg_scale: fleet simulation produced no profiles")

    def synth_run(j: int) -> ClientRun:
        base = base_runs[j % len(base_runs)]
        factor = 1.0 + 0.25 * (j % 7)
        records = []
        for record in base.records:
            branches = {}
            for address, profile in record.branches.items():
                executed = int(profile.executed * factor)
                branches[address] = BranchProfile(
                    address, executed, min(int(profile.taken * factor),
                                           executed)
                )
            records.append(HotSpotRecord(
                index=record.index,
                detected_at_branch=record.detected_at_branch,
                branches=branches,
            ))
        return ClientRun(
            run_id=f"{benchmark}/{input_name}#s{j:06d}",
            seed=j, epoch=j % 4, path=f"<synthetic-{j}>", records=records,
        )

    clients_axis = AGG_CLIENTS[:1] if quick else AGG_CLIENTS
    arrivals = 8 if quick else AGG_ARRIVALS
    shapes: List[Dict[str, object]] = []
    speedup_1k = 0.0
    equivalent = False
    for n_clients in clients_axis:
        aggregator = IncrementalAggregator()
        fold_started = time.perf_counter()
        for j in range(n_clients):
            aggregator.ingest_run(synth_run(j))
        fold_seconds = time.perf_counter() - fold_started

        stream_started = time.perf_counter()
        for k in range(arrivals):
            aggregator.ingest_run(synth_run(n_clients + k))
            aggregator.snapshot()
        streaming_seconds = time.perf_counter() - stream_started

        shape: Dict[str, object] = {
            "clients": n_clients,
            "phases": len(aggregator.snapshot().phases),
            "arrivals": arrivals,
            "fold_seconds": round(fold_seconds, 6),
            "docs_per_second": round(
                n_clients / fold_seconds, 1
            ) if fold_seconds else 0.0,
            "streaming_seconds": round(streaming_seconds, 6),
        }
        if n_clients == clients_axis[0]:
            # The acceptance head-to-head: same arrivals through the
            # from-scratch batch aggregator (re-cluster everything per
            # upload), then the contract check on the final profiles.
            runs = [synth_run(j) for j in range(n_clients)]
            batch_started = time.perf_counter()
            for k in range(arrivals):
                runs.append(synth_run(n_clients + k))
                runs.sort(key=lambda run: run.run_id)
                batch_fleet = merge_runs(IngestResult(runs=runs))
            batch_seconds = time.perf_counter() - batch_started
            speedup_1k = (
                batch_seconds / streaming_seconds if streaming_seconds
                else 0.0
            )
            equivalent = profiles_equivalent(
                aggregator.snapshot(), batch_fleet
            )
            shape["batch_seconds"] = round(batch_seconds, 6)
            shape["speedup"] = round(speedup_1k, 1)
            shape["equivalent"] = equivalent
        shapes.append(shape)
    return {
        "seconds": time.perf_counter() - started,
        "clients_axis": list(clients_axis),
        "arrivals": arrivals,
        "speedup_1k": round(speedup_1k, 1),
        "speedup_target": AGG_SPEEDUP_TARGET,
        "equivalent": equivalent,
        "shapes": shapes,
    }


#: Documents pushed through each ingest path by ``http_ingest``.
HTTP_INGEST_DOCS = 256
#: Documents per ``POST /profiles`` batch.
HTTP_INGEST_BATCH = 64


def _bench_http_ingest(quick: bool) -> Dict[str, object]:
    """HTTP daemon ingest vs direct ``ingest_paths``, docs/sec.

    Seeds a real fleet (:data:`BENCH_WORKLOAD`), synthesizes N profile
    documents from it (counter scaling, clustering-preserving — the
    ``agg_scale`` trick), then folds the same documents twice: straight
    into an :class:`~repro.service.aggregate.IncrementalAggregator`
    from disk, and over localhost HTTP through the
    :mod:`repro.server` daemon in NDJSON batches of
    :data:`HTTP_INGEST_BATCH`.  Reports docs/sec on both paths, the
    HTTP overhead ratio, and ``equivalent`` — the two merged snapshots
    must carry the same digest (the wire adds transport, never
    semantics).
    """
    from repro.hsd.serialize import make_provenance, records_to_dict
    from repro.server import DaemonClient, ServerConfig, start_daemon_thread
    from repro.service import ArtifactStore, IncrementalAggregator
    from repro.service.aggregate import ingest_paths
    from repro.service.clients import simulate_fleet

    benchmark, input_name = BENCH_WORKLOAD
    started = time.perf_counter()
    docs = 64 if quick else HTTP_INGEST_DOCS
    with tempfile.TemporaryDirectory(prefix="repro-http-bench-") as out_dir:
        fleet_dir = os.path.join(out_dir, "fleet")
        simulate_fleet(
            benchmark, input_name, runs=8, out_dir=fleet_dir, epochs=4
        )
        base_runs = ingest_paths(
            sorted(os.path.join(fleet_dir, p) for p in os.listdir(fleet_dir))
        ).runs
        if not base_runs:
            raise RuntimeError(
                "http_ingest: fleet simulation produced no profiles"
            )

        from repro.hsd.records import BranchProfile, HotSpotRecord

        doc_dir = os.path.join(out_dir, "docs")
        os.makedirs(doc_dir)
        texts = []
        for j in range(docs):
            base = base_runs[j % len(base_runs)]
            factor = 1.0 + 0.25 * (j % 7)
            records = []
            for record in base.records:
                branches = {}
                for address, profile in record.branches.items():
                    executed = int(profile.executed * factor)
                    branches[address] = BranchProfile(
                        address, executed,
                        min(int(profile.taken * factor), executed),
                    )
                records.append(HotSpotRecord(
                    index=record.index,
                    detected_at_branch=record.detected_at_branch,
                    branches=branches,
                ))
            meta = {"provenance": make_provenance(
                f"http-client-{j:06d}", seed=j, epoch=j % 4
            )}
            text = json.dumps(records_to_dict(records, meta),
                              sort_keys=True)
            texts.append(text)
            with open(os.path.join(doc_dir, f"doc-{j:06d}.json"),
                      "w") as handle:
                handle.write(text)

        direct = IncrementalAggregator()
        direct_started = time.perf_counter()
        direct.ingest_paths(
            sorted(os.path.join(doc_dir, p) for p in os.listdir(doc_dir))
        )
        direct_seconds = time.perf_counter() - direct_started
        direct_digest = direct.snapshot().digest()

        handle = start_daemon_thread(
            ServerConfig(benchmark=benchmark, input_name=input_name,
                         port=0, tag="bench"),
            store=ArtifactStore("off"),
        )
        try:
            with DaemonClient.for_daemon(handle) as client:
                flat = client.tenant()
                http_started = time.perf_counter()
                for start in range(0, docs, HTTP_INGEST_BATCH):
                    status, _ = flat.upload(
                        texts[start:start + HTTP_INGEST_BATCH]
                    )
                    if status != 200:
                        raise RuntimeError(
                            f"http_ingest: POST /profiles -> {status}"
                        )
                http_seconds = time.perf_counter() - http_started
                _, snap = flat.snapshot()
        finally:
            handle.stop()

    direct_rate = docs / direct_seconds if direct_seconds else 0.0
    http_rate = docs / http_seconds if http_seconds else 0.0
    return {
        "seconds": time.perf_counter() - started,
        "documents": docs,
        "batch_size": HTTP_INGEST_BATCH,
        "direct_seconds": round(direct_seconds, 6),
        "direct_docs_per_second": round(direct_rate, 1),
        "http_seconds": round(http_seconds, 6),
        "http_docs_per_second": round(http_rate, 1),
        "http_overhead": round(
            direct_rate / http_rate, 2
        ) if http_rate else 0.0,
        "equivalent": snap["digest"] == direct_digest,
    }


def _bench_http_concurrency(quick: bool) -> Dict[str, object]:
    """Multi-tenant daemon under N uploader threads × T tenants.

    Seeds a real fleet (:data:`BENCH_WORKLOAD`), synthesizes a
    per-tenant document set for three tenants (the daemon's default
    plus two others), stamps each document's ``meta.benchmark``, and
    interleaves them round-robin.  For each point on the N-uploader
    axis a fresh daemon ingests the full interleaved set through the
    flat ``POST /profiles`` demultiplexer, split across N concurrent
    client threads.  Reports docs/sec per axis point and
    ``equivalent`` — every tenant's wire snapshot digest must equal a
    local per-tenant streaming merge (concurrency adds throughput,
    never cross-tenant bleed).
    """
    import threading

    from repro.hsd.records import BranchProfile, HotSpotRecord
    from repro.hsd.serialize import make_provenance, records_to_dict
    from repro.server import DaemonClient, ServerConfig, start_daemon_thread
    from repro.service import ArtifactStore, IncrementalAggregator
    from repro.service.aggregate import ingest_paths
    from repro.service.clients import simulate_fleet

    benchmark, input_name = BENCH_WORKLOAD
    started = time.perf_counter()
    docs_per_tenant = 24 if quick else 64
    uploaders_axis = (1, 4) if quick else (1, 4, 8)
    tenants = (f"{benchmark}/{input_name}", "fleet.alpha/A",
               "fleet.beta/B")

    with tempfile.TemporaryDirectory(prefix="repro-http-conc-") as out_dir:
        fleet_dir = os.path.join(out_dir, "fleet")
        simulate_fleet(
            benchmark, input_name, runs=8, out_dir=fleet_dir, epochs=4
        )
        base_runs = ingest_paths(
            sorted(os.path.join(fleet_dir, p) for p in os.listdir(fleet_dir))
        ).runs
        if not base_runs:
            raise RuntimeError(
                "http_concurrency: fleet simulation produced no profiles"
            )

        per_tenant: Dict[str, List[str]] = {}
        for t_index, tenant in enumerate(tenants):
            texts = []
            for j in range(docs_per_tenant):
                base = base_runs[(j + t_index) % len(base_runs)]
                factor = 1.0 + 0.2 * ((j + 3 * t_index) % 9)
                records = []
                for record in base.records:
                    branches = {}
                    for address, profile in record.branches.items():
                        executed = int(profile.executed * factor)
                        branches[address] = BranchProfile(
                            address, executed,
                            min(int(profile.taken * factor), executed),
                        )
                    records.append(HotSpotRecord(
                        index=record.index,
                        detected_at_branch=record.detected_at_branch,
                        branches=branches,
                    ))
                meta = {
                    "benchmark": tenant,
                    "provenance": make_provenance(
                        f"{tenant}#conc-{j:06d}", seed=j, epoch=j % 4
                    ),
                }
                texts.append(json.dumps(records_to_dict(records, meta),
                                        sort_keys=True))
            per_tenant[tenant] = texts

        # Local per-tenant streaming merges: the equivalence oracle.
        local_digests = {}
        for tenant, texts in per_tenant.items():
            local = IncrementalAggregator()
            for text in texts:
                if not local.ingest_text(text):
                    raise RuntimeError(
                        "http_concurrency: local fold rejected a document"
                    )
            local_digests[tenant] = local.snapshot().digest()

        interleaved = []
        for j in range(docs_per_tenant):
            for tenant in tenants:
                interleaved.append(per_tenant[tenant][j])
        total_docs = len(interleaved)

        axis = []
        equivalent = True
        for uploaders in uploaders_axis:
            handle = start_daemon_thread(
                ServerConfig(benchmark=benchmark, input_name=input_name,
                             port=0, tag="bench"),
                store=ArtifactStore("off"),
            )
            failures: List[str] = []

            def upload(shard: List[str]) -> None:
                try:
                    with DaemonClient.for_daemon(handle) as client:
                        flat = client.tenant()
                        for start in range(0, len(shard),
                                           HTTP_INGEST_BATCH):
                            status, _ = flat.upload(
                                shard[start:start + HTTP_INGEST_BATCH]
                            )
                            if status != 200:
                                failures.append(f"POST -> {status}")
                except Exception as exc:  # noqa: BLE001 - recorded
                    failures.append(repr(exc))

            shards = [interleaved[k::uploaders] for k in range(uploaders)]
            threads = [
                threading.Thread(target=upload, args=(shard,))
                for shard in shards
            ]
            try:
                point_started = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                point_seconds = time.perf_counter() - point_started
                if failures:
                    raise RuntimeError(
                        f"http_concurrency: {failures[0]}"
                    )
                with DaemonClient.for_daemon(handle) as client:
                    for tenant in tenants:
                        _, snap = client.tenant(tenant).snapshot()
                        if snap.get("digest") != local_digests[tenant]:
                            equivalent = False
            finally:
                handle.stop()
            axis.append({
                "uploaders": uploaders,
                "seconds": round(point_seconds, 6),
                "docs_per_second": round(
                    total_docs / point_seconds, 1
                ) if point_seconds else 0.0,
            })

    return {
        "seconds": time.perf_counter() - started,
        "tenants": len(tenants),
        "documents_per_tenant": docs_per_tenant,
        "documents": total_docs,
        "batch_size": HTTP_INGEST_BATCH,
        "axis": axis,
        "docs_per_second": max(p["docs_per_second"] for p in axis),
        "equivalent": equivalent,
    }


# ---------------------------------------------------------------------------
# suite driver
# ---------------------------------------------------------------------------

def bench_suite(quick: bool) -> Dict[str, Callable[[], Dict[str, object]]]:
    """Name → runner for every pinned benchmark."""
    repeats = 1 if quick else 3
    campaign_trials = 2 if quick else 5
    return {
        "interpreter_loop": lambda: _bench_interpreter(repeats),
        "compiled_loop": lambda: _bench_compiled(repeats),
        "detector_observe": lambda: _bench_detector(repeats),
        "detector_observe_stream": lambda: _bench_detector_stream(repeats),
        "pack_pipeline": lambda: _bench_pack(repeats),
        "fault_campaign": lambda: _bench_campaign(campaign_trials),
        "batched_fleet": lambda: _bench_batched_fleet(repeats),
        "batched_grid": lambda: _bench_batched_grid(quick),
        "agg_scale": lambda: _bench_agg_scale(quick),
        "http_ingest": lambda: _bench_http_ingest(quick),
        "http_concurrency": lambda: _bench_http_concurrency(quick),
    }


def run_bench(
    quick: bool = False, only: Optional[List[str]] = None
) -> Dict[str, object]:
    """Run the pinned suite; ``quick`` uses single repetitions and a
    shorter campaign (the CI smoke configuration).  ``only`` restricts
    the run to the named benchmarks (``repro bench agg_scale``)."""
    suite = bench_suite(quick)
    if only:
        unknown = sorted(set(only) - set(suite))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {', '.join(unknown)}; "
                f"known: {', '.join(suite)}"
            )
        selected = [name for name in suite if name in set(only)]
    else:
        selected = list(suite)

    previous_cache = os.environ.get("REPRO_TRACE_CACHE")
    results: Dict[str, Dict[str, object]] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        os.environ["REPRO_TRACE_CACHE"] = cache_dir
        from repro.engine.trace_cache import reset_default_cache

        reset_default_cache()
        try:
            for name in selected:
                results[name] = suite[name]()
        finally:
            if previous_cache is None:
                os.environ.pop("REPRO_TRACE_CACHE", None)
            else:
                os.environ["REPRO_TRACE_CACHE"] = previous_cache
            reset_default_cache()

    return {
        "date": datetime.date.today().isoformat(),
        "quick": quick,
        "workload": "/".join(BENCH_WORKLOAD),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine": os.environ.get("REPRO_ENGINE", "compiled"),
        "results": results,
    }


def default_report_path(report: Dict[str, object]) -> str:
    return f"BENCH_{report['date']}.json"


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(report: Dict[str, object]) -> str:
    lines = [
        f"bench {report['date']} ({'quick' if report['quick'] else 'full'}) "
        f"workload={report['workload']} engine={report['engine']}"
    ]
    for name, result in sorted(report["results"].items()):
        extras = " ".join(
            f"{k}={v:,.0f}" if isinstance(v, float) and v > 100 else f"{k}={v}"
            for k, v in sorted(result.items())
            if k != "seconds" and not isinstance(v, (list, dict))
        )
        lines.append(f"  {name:26s} {result['seconds']:8.3f}s  {extras}")
        for cell in result.get("cells", ()):
            lines.append(
                f"    clients={cell['clients']:3d} phases={cell['phases']}  "
                f"batched={cell['batched_seconds']:8.3f}s  "
                f"sequential={cell['sequential_seconds']:8.3f}s  "
                f"speedup={cell['speedup']:.1f}x"
            )
        for shape in result.get("shapes", ()):
            line = (
                f"    clients={shape['clients']:6d} "
                f"phases={shape['phases']}  "
                f"fold={shape['fold_seconds']:8.3f}s  "
                f"streaming={shape['streaming_seconds']:8.3f}s"
                f"/{shape['arrivals']} arrivals"
            )
            if "batch_seconds" in shape:
                line += (
                    f"  batch={shape['batch_seconds']:8.3f}s  "
                    f"speedup={shape['speedup']:.1f}x  "
                    f"equivalent={shape['equivalent']}"
                )
            lines.append(line)
        for point in result.get("axis", ()):
            lines.append(
                f"    uploaders={point['uploaders']:3d}  "
                f"{point['seconds']:8.3f}s  "
                f"docs/s={point['docs_per_second']:,.1f}"
            )
    return "\n".join(lines)


def check_report(
    report: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Regressions of ``report`` vs ``baseline`` beyond ``threshold``.

    Only benchmarks present in both reports are compared, so adding a
    benchmark never breaks an old baseline.
    """
    problems: List[str] = []
    base_results = baseline.get("results", {})
    for name, result in report["results"].items():
        base = base_results.get(name)
        if not base:
            continue
        base_seconds = float(base["seconds"])
        seconds = float(result["seconds"])
        if base_seconds <= 0:
            continue
        ratio = seconds / base_seconds
        if ratio > 1.0 + threshold:
            problems.append(
                f"{name}: {seconds:.3f}s vs baseline {base_seconds:.3f}s "
                f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
            )
    return problems


def main_bench(
    quick: bool = False,
    out: Optional[str] = None,
    check: Optional[str] = None,
    threshold: float = DEFAULT_THRESHOLD,
    only: Optional[List[str]] = None,
) -> int:
    try:
        report = run_bench(quick=quick, only=only)
    except ValueError as exc:
        print(f"repro bench: {exc}")
        return 2
    print(render_report(report))
    path = out or default_report_path(report)
    write_report(report, path)
    print(f"(written to {path})")
    if check:
        with open(check) as handle:
            baseline = json.load(handle)
        problems = check_report(report, baseline, threshold)
        if problems:
            print(f"REGRESSION vs {check}:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"no regressions vs {check} (threshold {threshold:.0%})")
    return 0
