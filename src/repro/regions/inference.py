"""Block and arc temperature inference (paper Figure 4 / Figure 5).

The algorithm iterates the following rules to a fixed point, only ever
*solving unknowns* (a known Hot or Cold temperature is never
overwritten):

* **Statement 3** (rule a) — a block is Cold if all of its incoming
  arcs, or all of its outgoing arcs, are known Cold.
* **Statement 4** (rules b, c) — a block is Hot if any arc in or out of
  it is Hot.
* **Statement 6** (rule d) — every arc in or out of a Cold block is
  Cold.
* **Statement 7** (rules e, f) — flow conservation at a Hot block: if
  all *other* incoming (resp. outgoing) arcs of a Hot block are known
  Cold, the remaining unknown arc must be Hot.  With a single arc the
  condition is vacuously true — a Hot block's only outgoing arc is Hot.
* **Statement 9** — a Hot block ending in a subroutine call heats the
  callee's prologue block (this is what lets regions span functions).

When the Figure 8 experiments turn inference *off*, "the region
identification process treat[s] the branch data recorded by the HSD as
complete ... additional inference is only performed to blocks that do
not contain a branch": block-temperature rules are then restricted to
blocks that do not end in a conditional branch (arc rules still run).
"""

from __future__ import annotations

from typing import List

from repro.program.cfg import Arc

from .config import RegionConfig
from .temperature import FunctionMarking, RegionMarking, Temp


def _ends_in_conditional_branch(marking: FunctionMarking, label: str) -> bool:
    block = marking.function.cfg.by_label[label]
    return block.ends_in_conditional_branch


def _may_infer_block(
    marking: FunctionMarking, label: str, config: RegionConfig
) -> bool:
    """Whether block-temperature inference may touch this block."""
    if config.inference:
        return True
    return not _ends_in_conditional_branch(marking, label)


def _apply_block_rules(
    marking: FunctionMarking, label: str, config: RegionConfig
) -> bool:
    """Statements 3 and 4; returns True on any change."""
    if marking.block(label) is not Temp.UNKNOWN:
        return False
    if not _may_infer_block(marking, label, config):
        return False
    in_arcs = marking.in_arcs(label)
    out_arcs = marking.out_arcs(label)

    # Statement 4: any Hot arc in or out heats the block.
    for arc in in_arcs:
        if marking.arc(arc.key) is Temp.HOT:
            return marking.set_block(label, Temp.HOT)
    for arc in out_arcs:
        if marking.arc(arc.key) is Temp.HOT:
            return marking.set_block(label, Temp.HOT)

    # Statement 3: all-in Cold or all-out Cold freezes the block.
    if in_arcs and all(marking.arc(a.key) is Temp.COLD for a in in_arcs):
        return marking.set_block(label, Temp.COLD)
    if out_arcs and all(marking.arc(a.key) is Temp.COLD for a in out_arcs):
        return marking.set_block(label, Temp.COLD)
    return False


def _apply_arc_rules(marking: FunctionMarking, label: str) -> bool:
    """Statements 6 and 7; returns True on any change."""
    changed = False
    temp = marking.block(label)
    in_arcs = marking.in_arcs(label)
    out_arcs = marking.out_arcs(label)

    if temp is Temp.COLD:
        # Statement 6: everything touching a Cold block is Cold.
        for arc in list(in_arcs) + list(out_arcs):
            if marking.arc(arc.key) is Temp.UNKNOWN:
                changed |= marking.set_arc(arc.key, Temp.COLD)
        return changed

    if temp is Temp.HOT:
        # Statement 7: flow conservation on each side separately.
        changed |= _solve_remaining_arc(marking, in_arcs)
        changed |= _solve_remaining_arc(marking, out_arcs)
    return changed


def _solve_remaining_arc(marking: FunctionMarking, arcs: List[Arc]) -> bool:
    """If all arcs but one are Cold and that one is Unknown, it is Hot."""
    unknown = [a for a in arcs if marking.arc(a.key) is Temp.UNKNOWN]
    if len(unknown) != 1:
        return False
    others = [a for a in arcs if a is not unknown[0]]
    if all(marking.arc(a.key) is Temp.COLD for a in others):
        return marking.set_arc(unknown[0].key, Temp.HOT)
    return False


def _apply_call_rule(
    region: RegionMarking, marking: FunctionMarking, label: str, config: RegionConfig
) -> bool:
    """Statement 9: a Hot call block heats the callee's prologue."""
    if marking.block(label) is not Temp.HOT:
        return False
    block = marking.function.cfg.by_label[label]
    term = block.terminator
    if term is None or not term.is_call:
        return False
    if term.target not in region.program.functions:
        return False
    callee_marking = region.marking(term.target)
    prologue = callee_marking.function.prologue_label()
    if callee_marking.block(prologue) is not Temp.UNKNOWN:
        return False
    if not _may_infer_block(callee_marking, prologue, config):
        return False
    return callee_marking.set_block(prologue, Temp.HOT)


def infer_temperatures(region: RegionMarking, config: RegionConfig) -> int:
    """Run the Figure 4 algorithm to a fixed point.

    Returns the number of inference passes performed.  The rules are
    monotone on the temperature lattice (unknowns only ever become Hot
    or Cold, never change again), so termination is guaranteed.
    """
    passes = 0
    changed = True
    while changed:
        passes += 1
        changed = False
        # List() because Statement 9 may add new function markings.
        for marking in list(region):
            for block in marking.function.cfg.blocks:
                label = block.label
                changed |= _apply_block_rules(marking, label, config)
                changed |= _apply_arc_rules(marking, label)
                changed |= _apply_call_rule(region, marking, label, config)
    return passes
