"""The :class:`HotRegion` result object.

One physical region is identified per program phase (hot-spot record);
package construction (:mod:`repro.packages`) consumes the region's hot
subgraph and its call-graph slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.weights import WeightEstimate, estimate_weights
from repro.hsd.records import HotSpotRecord
from repro.program.callgraph import CallGraph, CallSite
from repro.program.program import Program

from .config import RegionConfig
from .temperature import RegionMarking, Temp


@dataclass
class HotSubgraph:
    """The selected pieces of one function: hot blocks + included arcs."""

    function_name: str
    blocks: List[str]
    arcs: List[Tuple[str, str]]

    def __contains__(self, label: str) -> bool:
        return label in set(self.blocks)


class HotRegion:
    """An identified hot region for one detected phase."""

    def __init__(
        self,
        program: Program,
        record: HotSpotRecord,
        marking: RegionMarking,
        config: RegionConfig,
    ):
        self.program = program
        self.record = record
        self.marking = marking
        self.config = config

    # -- structure ----------------------------------------------------
    def function_names(self) -> List[str]:
        """Functions contributing at least one hot block."""
        return sorted(self.marking.hot_functions())

    def subgraph(self, function_name: str) -> HotSubgraph:
        """Hot blocks and included (Hot) arcs of one function.

        Only arcs whose two endpoints are hot are included; Hot arcs
        into excluded blocks cannot exist after inference, but Cold and
        Unknown arcs between hot blocks are exits / excluded paths.
        """
        fn_marking = self.marking.marking(function_name)
        cfg = fn_marking.function.cfg
        hot = {l for l in fn_marking.hot_blocks()}
        # Keep layout order for determinism.
        blocks = [b.label for b in cfg.blocks if b.label in hot]
        arcs = [
            arc.key
            for arc in cfg.arcs
            if fn_marking.arc(arc.key) is Temp.HOT
            and arc.src in hot
            and arc.dst in hot
        ]
        return HotSubgraph(function_name, blocks, arcs)

    def call_graph(self) -> CallGraph:
        """Call sites whose calling block is hot, between region functions."""
        names = set(self.function_names())
        graph = CallGraph()
        for name in sorted(names):
            graph.add_function(name)
        for name in sorted(names):
            fn_marking = self.marking.marking(name)
            hot = set(fn_marking.hot_blocks())
            for block in fn_marking.function.blocks:
                term = block.terminator
                if (
                    term is not None
                    and term.is_call
                    and block.label in hot
                    and term.target in names
                ):
                    graph.add_site(
                        CallSite(name, term.target, block.label, term.uid)
                    )
        return graph

    # -- statistics ---------------------------------------------------------
    def hot_instruction_count(self) -> int:
        return self.marking.hot_instruction_count()

    def hot_block_count(self) -> int:
        return self.marking.hot_block_count()

    def taken_probabilities(self, function_name: str) -> Dict[str, float]:
        return dict(self.marking.marking(function_name).taken_prob)

    def estimate_weights(self, function_name: str) -> WeightEstimate:
        """Profile weights for a whole function from record probabilities.

        Implements the weight calculation of section 5.4 (method of
        [4]): the recorded taken probabilities drive the flow
        equations; unrecorded branches default to 50/50.
        """
        fn_marking = self.marking.marking(function_name)
        return estimate_weights(fn_marking.function.cfg, fn_marking.taken_prob)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"<HotRegion record #{self.record.index}: "
            f"{self.hot_block_count()} blocks across "
            f"{len(self.function_names())} functions>"
        )


def selected_origins(regions: Iterable["HotRegion"]) -> Set[int]:
    """Original-binary instruction uids selected into ≥ 1 region.

    The one shared implementation of Table 3's "static instructions
    selected" set: :meth:`PackResult.expansion_row
    <repro.postlink.vacuum.PackResult.expansion_row>` and the fleet
    service's shard payloads both count from here (a regression test
    asserts they agree).  Pseudo instructions never count; replicated
    copies collapse onto the instruction they were cloned from via
    :meth:`~repro.isa.instructions.Instruction.root_origin`.
    """
    selected: Set[int] = set()
    for region in regions:
        for name in region.function_names():
            function = region.program.function(name)
            for label in region.subgraph(name).blocks:
                for inst in function.cfg.by_label[label].instructions:
                    if not inst.is_pseudo:
                        selected.add(inst.root_origin())
    return selected
