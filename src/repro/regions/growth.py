"""Heuristic hot-region growth (paper section 3.2.3).

Two expansion steps run after inference:

1. **Unknown-arc adoption** — "any arc with an Unknown temperature
   between two Hot blocks is included in the selected region", which
   eliminates it as an exit.  Cold arcs between Hot blocks stay
   excluded: the package remains specialized to the phase.
2. **Entry-predecessor expansion** — "in an attempt to find a single
   launch point for each package, the selected region is expanded into
   adjacent predecessor blocks from each entry block until another Hot
   temperature block is reached.  Such growth avoids all Cold arcs and
   blocks, and is limited to MAX_BLOCKS additional blocks."
"""

from __future__ import annotations

from typing import List, Set

from .config import RegionConfig
from .temperature import FunctionMarking, RegionMarking, Temp


def adopt_unknown_arcs(region: RegionMarking) -> int:
    """Step 1: include Unknown arcs whose endpoints are both Hot."""
    adopted = 0
    for marking in region:
        for arc in marking.function.cfg.arcs:
            if (
                marking.arc(arc.key) is Temp.UNKNOWN
                and marking.block(arc.src) is Temp.HOT
                and marking.block(arc.dst) is Temp.HOT
            ):
                marking.set_arc(arc.key, Temp.HOT)
                adopted += 1
    return adopted


def entry_blocks_of(marking: FunctionMarking) -> List[str]:
    """Hot blocks with no Hot incoming arcs, ignoring CFG back edges.

    These are the points where control enters the hot subgraph of the
    function and hence where the grown region may still want upstream
    predecessors.
    """
    back = {arc.key for arc in marking.function.cfg.back_edges()}
    entries = []
    for label in marking.hot_blocks():
        hot_in = [
            arc
            for arc in marking.in_arcs(label)
            if arc.key not in back and marking.arc(arc.key) is Temp.HOT
        ]
        if not hot_in:
            entries.append(label)
    return entries


def grow_entry_predecessors(region: RegionMarking, config: RegionConfig) -> int:
    """Step 2: pull in up to MAX_BLOCKS predecessors above each entry."""
    total_added = 0
    for marking in region:
        for entry in entry_blocks_of(marking):
            total_added += _grow_from(marking, entry, config.max_growth_blocks)
    return total_added


def _grow_from(marking: FunctionMarking, entry: str, budget: int) -> int:
    """Walk predecessor chains upward from one entry block."""
    added = 0
    frontier: Set[str] = {entry}
    while added < budget and frontier:
        next_frontier: Set[str] = set()
        for label in frontier:
            for arc in marking.in_arcs(label):
                if marking.arc(arc.key) is Temp.COLD:
                    continue  # growth avoids all Cold arcs
                pred = arc.src
                pred_temp = marking.block(pred)
                if pred_temp is Temp.COLD:
                    continue  # ... and Cold blocks
                if pred_temp is Temp.HOT:
                    # Reached another Hot block: connect and stop here.
                    marking.set_arc(arc.key, Temp.HOT)
                    continue
                if added >= budget:
                    break
                marking.set_block(pred, Temp.HOT)
                marking.set_arc(arc.key, Temp.HOT)
                added += 1
                next_frontier.add(pred)
        frontier = next_frontier
    return added


def grow_region(region: RegionMarking, config: RegionConfig) -> None:
    """Run both growth steps in paper order."""
    adopt_unknown_arcs(region)
    grow_entry_predecessors(region, config)
