"""Temperature lattice and region markings (paper section 3.2.1).

"Each block and arc in the CFG is augmented with *weight* and
*temperature* fields, along with an additional *taken probability*
field for each block ending in a branch.  ...  After this
initialization, blocks can have a temperature that is either Hot or
Unknown, while the temperature of CFG arcs can be Hot, Cold, or
Unknown."

A :class:`RegionMarking` holds those fields for every function touched
by one hot-spot record; it is the mutable working state shared by
seeding, inference, and growth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.program.function import Function
from repro.program.program import Program


class Temp(Enum):
    """Block / arc temperature."""

    UNKNOWN = "unknown"
    HOT = "hot"
    COLD = "cold"


ArcKey = Tuple[str, str]


@dataclass
class FunctionMarking:
    """Temperatures and weights over one function's CFG."""

    function: Function
    block_temp: Dict[str, Temp] = field(default_factory=dict)
    arc_temp: Dict[ArcKey, Temp] = field(default_factory=dict)
    block_weight: Dict[str, float] = field(default_factory=dict)
    arc_weight: Dict[ArcKey, float] = field(default_factory=dict)
    taken_prob: Dict[str, float] = field(default_factory=dict)
    #: Labels of blocks whose terminator branch appeared in the HSD
    #: record (as opposed to being inferred hot later).
    seeded_blocks: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        cfg = self.function.cfg
        for block in cfg.blocks:
            self.block_temp.setdefault(block.label, Temp.UNKNOWN)
        for arc in cfg.arcs:
            self.arc_temp.setdefault(arc.key, Temp.UNKNOWN)

    # -- mutation ------------------------------------------------------
    def set_block(self, label: str, temp: Temp) -> bool:
        """Set a block temperature; returns True if it changed."""
        if self.block_temp.get(label) is temp:
            return False
        self.block_temp[label] = temp
        return True

    def set_arc(self, key: ArcKey, temp: Temp) -> bool:
        if self.arc_temp.get(key) is temp:
            return False
        self.arc_temp[key] = temp
        return True

    # -- queries -----------------------------------------------------------
    def hot_blocks(self) -> List[str]:
        return [l for l, t in self.block_temp.items() if t is Temp.HOT]

    def cold_blocks(self) -> List[str]:
        return [l for l, t in self.block_temp.items() if t is Temp.COLD]

    def unknown_blocks(self) -> List[str]:
        return [l for l, t in self.block_temp.items() if t is Temp.UNKNOWN]

    def hot_arcs(self) -> List[ArcKey]:
        return [k for k, t in self.arc_temp.items() if t is Temp.HOT]

    def block(self, label: str) -> Temp:
        return self.block_temp[label]

    def arc(self, key: ArcKey) -> Temp:
        return self.arc_temp[key]

    def in_arcs(self, label: str):
        return self.function.cfg.predecessors(label)

    def out_arcs(self, label: str):
        return self.function.cfg.successors(label)


class RegionMarking:
    """Markings for all functions involved in one hot-spot's region."""

    def __init__(self, program: Program):
        self.program = program
        self.functions: Dict[str, FunctionMarking] = {}

    def marking(self, function_name: str) -> FunctionMarking:
        """The marking for a function, created on first touch.

        Region identification naturally pulls new functions in (e.g.
        Statement 9 of the inference algorithm heats a callee's
        prologue), so markings are created lazily.
        """
        existing = self.functions.get(function_name)
        if existing is not None:
            return existing
        function = self.program.function(function_name)
        created = FunctionMarking(function)
        self.functions[function_name] = created
        return created

    def __contains__(self, function_name: str) -> bool:
        return function_name in self.functions

    def __iter__(self) -> Iterator[FunctionMarking]:
        return iter(list(self.functions.values()))

    # -- aggregate queries --------------------------------------------------
    def hot_block_count(self) -> int:
        return sum(len(m.hot_blocks()) for m in self.functions.values())

    def hot_instruction_count(self) -> int:
        total = 0
        for marking in self.functions.values():
            by_label = marking.function.cfg.by_label
            total += sum(by_label[l].size() for l in marking.hot_blocks())
        return total

    def hot_functions(self) -> List[str]:
        return [
            name
            for name, marking in self.functions.items()
            if marking.hot_blocks()
        ]

    def temperature_of(self, function_name: str, label: str) -> Temp:
        marking = self.functions.get(function_name)
        if marking is None:
            return Temp.UNKNOWN
        return marking.block_temp.get(label, Temp.UNKNOWN)
