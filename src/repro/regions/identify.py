"""Top-level region identification: record -> HotRegion (paper section 3.2)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.hsd.records import HotSpotRecord
from repro.program.image import ProgramImage
from repro.program.program import Program

from .config import DEFAULT_REGION_CONFIG, RegionConfig
from .growth import grow_region
from .inference import infer_temperatures
from .seeding import BranchLocator, seed_marking
from .region import HotRegion


def branch_locator_from_image(image: ProgramImage) -> BranchLocator:
    """Map branch addresses of a linked image back to (function, block)."""
    index: BranchLocator = {}
    for function in image.program.functions.values():
        for block in function.blocks:
            term = block.terminator
            if term is not None and term.is_conditional_branch:
                index[image.address_of(term)] = (function.name, block.label)
    return index


def identify_region(
    program: Program,
    record: HotSpotRecord,
    locate: BranchLocator,
    config: RegionConfig = DEFAULT_REGION_CONFIG,
) -> HotRegion:
    """Run seeding, inference, and growth for one hot-spot record."""
    marking = seed_marking(program, record, locate, config)
    infer_temperatures(marking, config)
    grow_region(marking, config)
    return HotRegion(program, record, marking, config)


def identify_regions(
    program: Program,
    records: Iterable[HotSpotRecord],
    locate: BranchLocator,
    config: RegionConfig = DEFAULT_REGION_CONFIG,
) -> List[HotRegion]:
    """Identify one region per (already filtered) hot-spot record."""
    return [identify_region(program, record, locate, config) for record in records]
