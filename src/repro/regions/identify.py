"""Top-level region identification: record -> HotRegion (paper section 3.2).

Hot-spot records are *untrusted* input: the BBB snapshot may reference
addresses that resolve to no known block (a stale profile against a
relinked binary, or fault-injected corruption — see
:mod:`repro.hsd.faults`).  ``identify_region`` salvages what it can: a
record with *some* resolvable branches is seeded from those, while a
record whose branches are all unmapped — or whose marking collapses to
an empty region — raises a typed
:class:`~repro.errors.RegionError` carrying the offending addresses
instead of letting a bare ``KeyError``/``AttributeError`` escape.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import RegionError
from repro.hsd.records import HotSpotRecord
from repro.program.image import ProgramImage
from repro.program.program import Program, ProgramError

from .config import DEFAULT_REGION_CONFIG, RegionConfig
from .growth import grow_region
from .inference import infer_temperatures
from .seeding import BranchLocator, seed_marking
from .region import HotRegion


def branch_locator_from_image(image: ProgramImage) -> BranchLocator:
    """Map branch addresses of a linked image back to (function, block)."""
    index: BranchLocator = {}
    for function in image.program.functions.values():
        for block in function.blocks:
            term = block.terminator
            if term is not None and term.is_conditional_branch:
                index[image.address_of(term)] = (function.name, block.label)
    return index


def unmapped_addresses(
    record: HotSpotRecord, locate: BranchLocator
) -> List[int]:
    """Record addresses that resolve to no known branch block."""
    return sorted(a for a in record.branches if a not in locate)


def identify_region(
    program: Program,
    record: HotSpotRecord,
    locate: BranchLocator,
    config: RegionConfig = DEFAULT_REGION_CONFIG,
) -> HotRegion:
    """Run seeding, inference, and growth for one hot-spot record.

    Raises :class:`~repro.errors.RegionError` when the record cannot
    produce a usable region (no mapped branches, or an empty marking).
    """
    if not record.branches:
        raise RegionError(
            f"record #{record.index} holds no branch profiles",
            phase=record.index,
        )
    unmapped = unmapped_addresses(record, locate)
    if len(unmapped) == len(record.branches):
        raise RegionError(
            f"record #{record.index}: none of its {len(unmapped)} branch "
            f"addresses resolve to a known block "
            f"(first: {hex(unmapped[0])})",
            addresses=unmapped,
            phase=record.index,
        )
    try:
        marking = seed_marking(program, record, locate, config)
        infer_temperatures(marking, config)
        grow_region(marking, config)
    except (KeyError, AttributeError, ProgramError) as exc:
        raise RegionError(
            f"record #{record.index}: region identification failed "
            f"({type(exc).__name__}: {exc})",
            addresses=unmapped,
            phase=record.index,
        ) from exc
    region = HotRegion(program, record, marking, config)
    if not region.function_names():
        raise RegionError(
            f"record #{record.index} produced an empty region "
            f"({len(unmapped)} of {len(record.branches)} branch addresses "
            "unmapped)",
            addresses=unmapped,
            phase=record.index,
        )
    return region


def identify_regions(
    program: Program,
    records: Iterable[HotSpotRecord],
    locate: BranchLocator,
    config: RegionConfig = DEFAULT_REGION_CONFIG,
) -> List[HotRegion]:
    """Identify one region per (already filtered) hot-spot record.

    This is the *strict* path: the first unusable record raises.  The
    :class:`~repro.postlink.vacuum.VacuumPacker` quarantine loop calls
    :func:`identify_region` per record instead and degrades per phase.
    """
    return [identify_region(program, record, locate, config) for record in records]
