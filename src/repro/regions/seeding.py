"""Hot spot block and branch identification (paper section 3.2.1).

Seeds a :class:`~repro.regions.temperature.RegionMarking` from one
:class:`~repro.hsd.records.HotSpotRecord`:

* each block containing a hot-spot branch gets weight = executed count,
  temperature Hot, and taken probability = taken / executed;
* the branch's taken and fall-through arcs get weights from the
  counters, and a temperature of Hot when the direction carries at
  least 25 % of the branch's flow *or* more weight than the HSD's
  hot-spot branch execution threshold — Cold otherwise.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.hsd.records import HotSpotRecord
from repro.program.cfg import ArcKind
from repro.program.program import Program

from .config import RegionConfig
from .temperature import RegionMarking, Temp

#: Maps a branch address in the profiled image to its (function, block).
BranchLocator = Dict[int, Tuple[str, str]]


def seed_marking(
    program: Program,
    record: HotSpotRecord,
    locate: BranchLocator,
    config: RegionConfig,
) -> RegionMarking:
    """Initialize temperatures/weights from one hot-spot record."""
    marking = RegionMarking(program)
    for address, profile in record.branches.items():
        location = locate.get(address)
        if location is None:
            # The record refers to code we no longer have (should not
            # happen when profiling and packing the same binary).
            continue
        function_name, label = location
        fn_marking = marking.marking(function_name)
        fn_marking.set_block(label, Temp.HOT)
        fn_marking.seeded_blocks.add(label)
        fn_marking.block_weight[label] = float(profile.executed)
        if profile.executed:
            fn_marking.taken_prob[label] = profile.taken / profile.executed

        for arc in fn_marking.out_arcs(label):
            if arc.kind is ArcKind.TAKEN:
                weight = float(profile.taken)
            elif arc.kind is ArcKind.FALLTHROUGH:
                weight = float(profile.executed - profile.taken)
            else:  # pragma: no cover - branch blocks have no other kinds
                continue
            fn_marking.arc_weight[arc.key] = weight
            fraction = weight / profile.executed if profile.executed else 0.0
            if (
                fraction >= config.hot_arc_fraction
                or weight > config.hot_arc_weight_threshold
            ):
                fn_marking.set_arc(arc.key, Temp.HOT)
            else:
                fn_marking.set_arc(arc.key, Temp.COLD)
    return marking
