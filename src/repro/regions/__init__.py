"""Hot-region identification (paper section 3.2)."""

from .config import DEFAULT_REGION_CONFIG, RegionConfig
from .growth import adopt_unknown_arcs, entry_blocks_of, grow_entry_predecessors, grow_region
from .identify import branch_locator_from_image, identify_region, identify_regions
from .inference import infer_temperatures
from .region import HotRegion, HotSubgraph, selected_origins
from .seeding import seed_marking
from .temperature import FunctionMarking, RegionMarking, Temp

__all__ = [
    "DEFAULT_REGION_CONFIG",
    "FunctionMarking",
    "HotRegion",
    "HotSubgraph",
    "RegionConfig",
    "RegionMarking",
    "Temp",
    "adopt_unknown_arcs",
    "branch_locator_from_image",
    "entry_blocks_of",
    "grow_entry_predecessors",
    "grow_region",
    "identify_region",
    "identify_regions",
    "infer_temperatures",
    "seed_marking",
    "selected_origins",
]
