"""Region-formation configuration (paper sections 3.2.1-3.2.3)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RegionConfig:
    """Knobs of the hot-region identification algorithm.

    * ``hot_arc_fraction`` — an arc direction is Hot when it carries at
      least this fraction of its branch's flow (paper: 25 %).
    * ``hot_arc_weight_threshold`` — ... or when its weight exceeds
      "the HSD's hot spot branch execution threshold" (paper: the
      candidate threshold, 16).
    * ``inference`` — enable full temperature inference.  When off,
      only blocks that do *not* end in a conditional branch may be
      inferred (the Figure 8 "w/o inference" configurations: the HSD
      data is treated as complete for branch blocks).
    * ``max_growth_blocks`` — MAX_BLOCKS of section 3.2.3 (paper: 1).
    """

    hot_arc_fraction: float = 0.25
    hot_arc_weight_threshold: int = 16
    inference: bool = True
    max_growth_blocks: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.hot_arc_fraction <= 1.0:
            raise ValueError("hot_arc_fraction must be in [0, 1]")
        if self.max_growth_blocks < 0:
            raise ValueError("max_growth_blocks must be non-negative")


DEFAULT_REGION_CONFIG = RegionConfig()
