"""Service-scale fault injection for the packing farm and ingest path.

The PR-1 fault injector (:mod:`repro.hsd.faults`) corrupts *profiles*
before they reach the pipeline; this module extends the same idea to
the faults a fleet service actually dies from: a worker process that
crashes or hangs mid-shard, an artifact-store entry that rots on disk,
a profile document truncated mid-upload, and a client whose clock
stamps profiles from the future.  The chaos campaign
(:mod:`repro.experiments.chaos_campaign`) drives these against the
full ingest → merge → farm path and checks the service survives.

Worker faults travel through the ``REPRO_CHAOS`` environment variable
as a JSON :class:`ChaosSpec`: farm workers call :func:`chaos_hook` at
the top of each shard, and the hook fires the configured fault.
Triggering is bounded and race-free across processes: each firing
atomically claims a token file (``O_CREAT | O_EXCL``) under the spec's
``tokens_dir``, so at most ``max_triggers`` faults fire per armed spec
no matter how many workers, retries, or pool respawns race for them —
which is what lets a bounded-retry farm deterministically outlast a
bounded chaos budget.

Store/ingest faults do not need a hook — they are plain file
corruption the campaign applies between service calls:
:func:`corrupt_artifact_entry`, :func:`truncate_profile`, and
:func:`skew_profile_epoch`.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import ServiceError

#: Environment variable carrying the armed spec into farm workers.
ENV_CHAOS = "REPRO_CHAOS"

#: Faults fired inside a farm worker via :func:`chaos_hook`.
WORKER_FAULT_MODES = ("worker_crash", "worker_exception", "shard_hang")

#: Faults applied to files between service calls.
FILE_FAULT_MODES = ("corrupt_artifact", "truncated_profile", "epoch_skew")

ALL_SERVICE_FAULT_MODES = WORKER_FAULT_MODES + FILE_FAULT_MODES

#: The exit status a chaos-crashed worker dies with (distinctive in
#: pool tracebacks and logs).
CRASH_EXIT_CODE = 13


@dataclass(frozen=True)
class ChaosSpec:
    """One armed worker fault: what fires, where, and how often."""

    mode: str
    #: Directory for trigger-claim token files; must be shared by every
    #: process participating in the campaign trial.
    tokens_dir: str
    #: Shard numbers eligible to fire the fault; empty = any shard.
    shards: Tuple[int, ...] = ()
    #: Total firings across all workers/retries of the armed spec.
    max_triggers: int = 1
    #: ``shard_hang`` sleep length (the farm's per-shard timeout must
    #: be shorter for the hang to register as a timeout).
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in WORKER_FAULT_MODES:
            raise ServiceError(
                f"unknown worker chaos mode {self.mode!r}",
                hint=f"known modes: {', '.join(WORKER_FAULT_MODES)}",
            )
        if self.max_triggers < 1:
            raise ServiceError("chaos max_triggers must be >= 1")
        if self.hang_seconds <= 0:
            raise ServiceError("chaos hang_seconds must be positive")
        if not self.tokens_dir:
            raise ServiceError("chaos spec needs a tokens_dir")

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "tokens_dir": self.tokens_dir,
            "shards": list(self.shards),
            "max_triggers": self.max_triggers,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "ChaosSpec":
        return cls(
            mode=document["mode"],
            tokens_dir=document["tokens_dir"],
            shards=tuple(document.get("shards", ())),
            max_triggers=int(document.get("max_triggers", 1)),
            hang_seconds=float(document.get("hang_seconds", 30.0)),
        )


@contextmanager
def armed(spec: ChaosSpec) -> Iterator[ChaosSpec]:
    """Arm ``spec`` for every farm worker spawned inside the block."""
    Path(spec.tokens_dir).mkdir(parents=True, exist_ok=True)
    previous = os.environ.get(ENV_CHAOS)
    os.environ[ENV_CHAOS] = json.dumps(spec.to_dict())
    try:
        yield spec
    finally:
        if previous is None:
            os.environ.pop(ENV_CHAOS, None)
        else:
            os.environ[ENV_CHAOS] = previous


def _claim_trigger(spec: ChaosSpec) -> bool:
    """Atomically claim one of the spec's trigger tokens.

    Token files are created with ``O_CREAT | O_EXCL`` so exactly one
    process wins each token even when workers race; once all
    ``max_triggers`` tokens exist, the fault is spent."""
    for index in range(spec.max_triggers):
        path = os.path.join(spec.tokens_dir, f"trigger-{index:04d}")
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return False
        os.close(handle)
        return True
    return False


def chaos_hook(site: str, shard: int) -> None:
    """Fire the armed worker fault, if any applies to this dispatch.

    Called by the farm worker at the top of each shard.  A missing or
    unparseable ``REPRO_CHAOS`` value is a no-op: chaos must never be
    able to break a production run by accident."""
    raw = os.environ.get(ENV_CHAOS)
    if not raw:
        return
    try:
        spec = ChaosSpec.from_dict(json.loads(raw))
    except (ValueError, KeyError, TypeError, ServiceError):
        return
    if site != "farm.shard":
        return
    if spec.shards and shard not in spec.shards:
        return
    if not _claim_trigger(spec):
        return
    if spec.mode == "worker_crash":
        # Die the way a real worker dies: no exception, no cleanup —
        # the parent sees a BrokenProcessPool.
        os._exit(CRASH_EXIT_CODE)
    if spec.mode == "worker_exception":
        raise ServiceError(
            f"chaos: injected worker fault on shard {shard}",
            hint="this is the chaos harness, not a real failure",
        )
    if spec.mode == "shard_hang":
        time.sleep(spec.hang_seconds)


# ---------------------------------------------------------------------------
# file-level faults (applied by the campaign between service calls)
# ---------------------------------------------------------------------------

def _pick(paths, rng) -> Path:
    ordered = sorted(paths)
    if not ordered:
        raise ServiceError("no files to inject a fault into")
    return Path(ordered[rng.randrange(len(ordered))])


def corrupt_artifact_entry(store_root: Union[str, Path], rng) -> str:
    """Truncate one artifact-store entry to garbage; returns its path.

    Models bit-rot / a partial copy: the store's stamp discipline must
    detect the damage on the next lookup, drop the entry, and re-pack.
    """
    path = _pick(Path(store_root).glob("*.json"), rng)
    data = path.read_bytes()
    path.write_bytes(data[: max(1, len(data) // 2)])
    return str(path)


def truncate_profile(profiles_dir: Union[str, Path], rng) -> str:
    """Truncate one client profile document mid-body; returns its path.

    Models an upload cut off mid-transfer: ingest must quarantine the
    document and merge the remaining fleet."""
    path = _pick(Path(profiles_dir).glob("*.json"), rng)
    data = path.read_bytes()
    path.write_bytes(data[: max(1, len(data) // 2)])
    return str(path)


def skew_profile_epoch(
    profiles_dir: Union[str, Path], rng, delta: int = 10_000
) -> str:
    """Stamp one profile with a far-future epoch; returns its path.

    Models client clock skew: one bad clock must not define the fleet
    max epoch (and thereby age every honest client out of an
    epoch-window merge) — ``MergePolicy.max_epoch_skew`` clamps it."""
    path = _pick(Path(profiles_dir).glob("*.json"), rng)
    document = json.loads(path.read_text())
    provenance = document["meta"]["provenance"]
    provenance["epoch"] = int(provenance.get("epoch", 0)) + delta
    path.write_text(json.dumps(document))
    return str(path)


__all__ = [
    "ALL_SERVICE_FAULT_MODES",
    "CRASH_EXIT_CODE",
    "ChaosSpec",
    "ENV_CHAOS",
    "FILE_FAULT_MODES",
    "WORKER_FAULT_MODES",
    "armed",
    "chaos_hook",
    "corrupt_artifact_entry",
    "skew_profile_epoch",
    "truncate_profile",
]
