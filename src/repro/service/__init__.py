"""Fleet profile service: aggregate many client profiles, pack once —
then keep the artifact fresh as the fleet's behavior drifts.

The deployment layer on top of the single-run pipeline (the BOLT
model): profiles arrive from many client runs of the same binary,
:mod:`~repro.service.aggregate` clusters and merges them into one
provenance-stamped consensus profile, and the
:mod:`~repro.service.farm` fans the merged phases out to worker
processes through the content-addressed
:mod:`~repro.service.artifacts` store.  ``repro ingest`` / ``repro
serve`` drive the whole thing from the command line and emit the JSON
:mod:`~repro.service.report`.

On top of the one-shot request sits the continuous re-optimization
loop: :mod:`~repro.service.drift` injects and detects behavior drift,
:mod:`~repro.service.controller` closes the probe → detect →
re-aggregate → re-pack cycle (``repro drift``), and
:mod:`~repro.service.chaos` injects service-scale faults — worker
crashes, shard hangs, corrupt artifacts, truncated uploads, clock skew
— that the fault-tolerant farm (:class:`~repro.service.farm.FarmPolicy`)
must survive (``repro chaos``).
"""

from .aggregate import (
    AGGREGATOR_MODES,
    AGGREGATOR_STATE_VERSION,
    CONTRACT,
    ClientRun,
    ContractTolerance,
    FleetProfile,
    IncrementalAggregator,
    IngestResult,
    MergePolicy,
    MergedPhase,
    PhaseProvenance,
    RejectedProfile,
    checkpoint_key,
    equivalence_diffs,
    ingest_dir,
    ingest_paths,
    load_client_run,
    merge_runs,
    merge_stream,
    profiles_equivalent,
    quarantine_profile,
)
from .artifacts import (
    HIT_SIDECAR_SUFFIX,
    ArtifactEntry,
    ArtifactStats,
    ArtifactStore,
    artifact_key,
    canonical_json,
    default_store,
    image_digest,
    reset_default_store,
)
from .chaos import (
    ALL_SERVICE_FAULT_MODES,
    ChaosSpec,
    armed,
    chaos_hook,
    corrupt_artifact_entry,
    skew_profile_epoch,
    truncate_profile,
)
from .clients import SimulatedClient, simulate_fleet
from .controller import ControllerConfig, ControllerReport, run_controller
from .drift import DriftDetector, DriftSpec, apply_drift
from .farm import (
    FarmConfig,
    FarmPolicy,
    FleetPackResult,
    ShardOutcome,
    degraded_payload,
    pack_fleet,
    shard_payload,
    shard_profile_digest,
)
from .report import FleetReport, build_report

__all__ = [
    "AGGREGATOR_MODES",
    "AGGREGATOR_STATE_VERSION",
    "ALL_SERVICE_FAULT_MODES",
    "ArtifactEntry",
    "ArtifactStats",
    "ArtifactStore",
    "CONTRACT",
    "ChaosSpec",
    "ClientRun",
    "ContractTolerance",
    "IncrementalAggregator",
    "ControllerConfig",
    "ControllerReport",
    "DriftDetector",
    "DriftSpec",
    "FarmConfig",
    "FarmPolicy",
    "FleetPackResult",
    "FleetProfile",
    "FleetReport",
    "HIT_SIDECAR_SUFFIX",
    "IngestResult",
    "MergePolicy",
    "MergedPhase",
    "PhaseProvenance",
    "RejectedProfile",
    "ShardOutcome",
    "SimulatedClient",
    "apply_drift",
    "armed",
    "artifact_key",
    "build_report",
    "canonical_json",
    "chaos_hook",
    "checkpoint_key",
    "equivalence_diffs",
    "corrupt_artifact_entry",
    "default_store",
    "degraded_payload",
    "image_digest",
    "ingest_dir",
    "ingest_paths",
    "load_client_run",
    "merge_runs",
    "merge_stream",
    "pack_fleet",
    "profiles_equivalent",
    "quarantine_profile",
    "reset_default_store",
    "run_controller",
    "shard_payload",
    "shard_profile_digest",
    "simulate_fleet",
    "skew_profile_epoch",
    "truncate_profile",
]
