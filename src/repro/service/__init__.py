"""Fleet profile service: aggregate many client profiles, pack once.

The deployment layer on top of the single-run pipeline (the BOLT
model): profiles arrive from many client runs of the same binary,
:mod:`~repro.service.aggregate` clusters and merges them into one
provenance-stamped consensus profile, and the
:mod:`~repro.service.farm` fans the merged phases out to worker
processes through the content-addressed
:mod:`~repro.service.artifacts` store.  ``repro ingest`` / ``repro
serve`` drive the whole thing from the command line and emit the JSON
:mod:`~repro.service.report`.
"""

from .aggregate import (
    ClientRun,
    FleetProfile,
    IngestResult,
    MergePolicy,
    MergedPhase,
    PhaseProvenance,
    RejectedProfile,
    ingest_dir,
    ingest_paths,
    merge_runs,
)
from .artifacts import (
    ArtifactStats,
    ArtifactStore,
    artifact_key,
    canonical_json,
    default_store,
    image_digest,
    reset_default_store,
)
from .clients import SimulatedClient, simulate_fleet
from .farm import (
    FarmConfig,
    FleetPackResult,
    ShardOutcome,
    pack_fleet,
    shard_payload,
    shard_profile_digest,
)
from .report import FleetReport, build_report

__all__ = [
    "ArtifactStats",
    "ArtifactStore",
    "ClientRun",
    "FarmConfig",
    "FleetPackResult",
    "FleetProfile",
    "FleetReport",
    "IngestResult",
    "MergePolicy",
    "MergedPhase",
    "PhaseProvenance",
    "RejectedProfile",
    "ShardOutcome",
    "SimulatedClient",
    "artifact_key",
    "build_report",
    "canonical_json",
    "default_store",
    "image_digest",
    "ingest_dir",
    "ingest_paths",
    "merge_runs",
    "pack_fleet",
    "reset_default_store",
    "shard_payload",
    "shard_profile_digest",
    "simulate_fleet",
]
