"""Phase drift: simulated behavior change, and its detection.

The paper's end vision is *transparent reoptimization*: phases are
detected in hardware and the binary is re-optimized as behavior
changes.  That only matters if behavior actually changes — so this
module supplies both halves of the experiment:

* :func:`apply_drift` injects a drift event into a workload's
  :class:`~repro.engine.behavior.BehaviorModel` by *warming formerly
  cold branches*: guards the generator pinned at probability 0.0 (the
  never-taken dives into cold code) get a real taken probability, so
  execution starts flowing into blocks no profile ever saw and the
  shipped packages' coverage decays.  This is the drift mode that
  matters to vacuum packing — per-phase bias shuffles merely move
  execution around *inside* the already-selected region union, which
  the packages still cover.

* :class:`DriftDetector` is the controller's trigger: it watches the
  projected coverage of the shipped artifact
  (:func:`repro.postlink.coverage.project_coverage`) decay against the
  artifact's provenance staleness (the epoch stamps
  :mod:`~repro.service.aggregate` merges into the fleet profile), and
  fires when both say the artifact is out of date.

Both halves are deterministic.  ``apply_drift`` keys each cold guard's
warm-or-not draw on the branch's *registration-order* stable id
(:meth:`~repro.engine.behavior.BehaviorModel.stable_id`) — so the same
drift hits the structurally-same branches in every seeded rebuild of
the workload (simulated clients rebuild their own workload instances;
see :func:`repro.service.clients.simulate_fleet`), and re-applying a
spec to an already-drifted model is a no-op: surviving cold guards
keep the exact draws that left them cold the first time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.engine.behavior import BehaviorModel


@dataclass(frozen=True)
class DriftSpec:
    """One injected drift event."""

    #: Service epoch at which the fleet's behavior changes.
    epoch: int = 2
    #: Fraction of cold guards that warm up (0 = no drift).
    severity: float = 0.5
    #: Taken probability a warmed guard acquires.
    warm_bias: float = 0.4
    #: Seed of the guard-selection draw.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError(f"drift severity {self.severity} out of [0, 1]")
        if not 0.0 < self.warm_bias <= 1.0:
            raise ValueError(f"warm_bias {self.warm_bias} out of (0, 1]")
        if self.epoch < 0:
            raise ValueError("drift epoch must be >= 0")

    def to_dict(self) -> Dict:
        return {
            "epoch": self.epoch,
            "severity": self.severity,
            "warm_bias": self.warm_bias,
            "seed": self.seed,
        }


def apply_drift(behavior: BehaviorModel, spec: DriftSpec) -> int:
    """Warm cold guards in place; returns how many branches changed.

    Each guard's draw is keyed on ``(spec, stable id)`` rather than on
    a shared RNG stream: a stream would realign over the shrunken cold
    list on a second application and warm different guards, whereas
    per-branch keys make the function idempotent — guards that stayed
    cold keep the same losing draw forever.
    """
    prefix = f"drift:{spec.seed}:{spec.severity!r}:{spec.warm_bias!r}"
    warmed = 0
    for uid in behavior.default_cold_branches():
        draw = random.Random(f"{prefix}:{behavior.stable_id(uid)}").random()
        if draw < spec.severity:
            behavior.set_bias(uid, spec.warm_bias)
            warmed += 1
    return warmed


@dataclass
class DriftDetector:
    """Coverage-decay trigger for the re-optimization controller.

    ``observe`` is called once per service epoch with the artifact's
    relative coverage decay and its provenance staleness (epochs since
    the newest contributing profile).  Both gates must open — decay
    without staleness is measurement noise on a fresh artifact, and
    staleness without decay is an artifact that still fits — and must
    stay open for ``patience`` consecutive epochs before the detector
    fires, debouncing one-epoch blips.
    """

    #: Relative coverage decay (1 - coverage/baseline) that counts as
    #: a strike.
    decay_threshold: float = 0.1
    #: Minimum artifact staleness (epochs) before decay counts.
    min_staleness: int = 1
    #: Consecutive decayed epochs required to fire.
    patience: int = 1
    strikes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.decay_threshold < 0:
            raise ValueError("decay_threshold must be >= 0")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")

    def observe(self, decay: float, staleness: int) -> bool:
        """Record one epoch's reading; True when a re-pack is due."""
        if decay >= self.decay_threshold and staleness >= self.min_staleness:
            self.strikes += 1
        else:
            self.strikes = 0
        return self.strikes >= self.patience

    def reset(self) -> None:
        """Clear the strike count (called after a re-pack ships)."""
        self.strikes = 0


__all__ = ["DriftDetector", "DriftSpec", "apply_drift"]
