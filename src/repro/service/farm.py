"""Sharded packing farm: fan merged phases out to worker processes.

Each shard — a contiguous slice of the fleet profile's merged phases —
is packed independently against the same binary: the worker rebuilds
the benchmark workload, hands the shard's consensus records to
:meth:`~repro.postlink.vacuum.VacuumPacker.pack_records`, and reduces
the result to a canonical JSON payload (packages, expansion, coverage,
quarantine diagnostics).  Because a shard's payload is a pure function
of (binary, shard records, pack config), the farm caches it in the
content-addressed :class:`~repro.service.artifacts.ArtifactStore` and
consults the store *before* dispatching: repeated requests hit disk
instead of re-packing.

Determinism: shards are formed, keyed, and reported in phase order,
workers are pure, and the parent writes store entries from the
returned payloads — so ``jobs=1`` and ``jobs=N`` produce byte-identical
store entries and identical payloads, differing only in wall-clock
timings.  Sharding trades cross-shard package linking for parallelism:
packages are linked within a shard (``shard_size`` phases at a time)
but never across shards — ``shard_size=1`` is maximal fan-out,
``shard_size=len(phases)`` recovers the exact single-run pipeline.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.api import PipelineConfig
from repro.errors import ServiceError
from repro.engine.trace_cache import image_for
from repro.experiments.parallel import parallel_map
from repro.hsd.serialize import record_from_entry, record_to_entry
from repro.obs import annotate, inc, span
from repro.postlink.vacuum import PackResult
from repro.workloads.suite import load_benchmark

from .aggregate import FleetProfile, MergedPhase
from .artifacts import ArtifactStore, artifact_key, canonical_json, default_store


@dataclass(frozen=True)
class FarmConfig:
    """Everything that determines a shard's packing artifact."""

    benchmark: str
    input_name: str = "A"
    scale: Optional[float] = None
    classic: bool = False
    link: bool = True
    optimize: bool = True
    ordering: str = "best"
    #: Full :class:`~repro.api.PipelineConfig` document.  When given it
    #: defines the pack configuration *entirely* (the four scalar knobs
    #: above are ignored); when ``None`` the scalars apply over
    #: pipeline defaults.  Either way :meth:`pipeline_config` is the
    #: one resolved truth.
    pipeline: Optional[Dict] = None
    #: Merged phases per worker dispatch (1 = maximal fan-out).
    shard_size: int = 1

    def pipeline_config(self) -> PipelineConfig:
        """The resolved pack configuration of this farm."""
        if self.pipeline is not None:
            return PipelineConfig.from_dict(self.pipeline)
        return PipelineConfig(
            classic=self.classic,
            link=self.link,
            optimize=self.optimize,
            ordering=self.ordering,
        )

    def pipeline_dict(self) -> Dict:
        """Canonical pipeline document (what workers receive)."""
        return self.pipeline_config().to_dict()

    def fingerprint(self) -> str:
        """Pack-config part of the artifact key.

        ``shard_size`` is deliberately absent: it only decides how
        phases are *grouped*, and the grouping is already captured by
        each shard's profile digest — two farms that happen to form
        the same shard reuse each other's artifacts.  v2: the pack
        configuration participates as the full canonical pipeline
        document, so *every* knob (similarity policy, region growth,
        ...) addresses its own artifacts.
        """
        document = self.pipeline_dict()
        document.pop("obs", None)  # tracing never changes pack output
        doc = canonical_json(document).decode()
        return (
            f"farm:v2;bench={self.benchmark}/{self.input_name};"
            f"scale={self.scale!r};pipeline={doc}"
        )


@dataclass
class ShardOutcome:
    """One shard's artifact, and how it was obtained."""

    shard: int
    phases: List[int]
    key: str
    cached: bool
    seconds: float
    payload: Dict


@dataclass
class FleetPackResult:
    """All shard outcomes of one farm request, in phase order."""

    outcomes: List[ShardOutcome] = field(default_factory=list)

    @property
    def cached_shards(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def packed_shards(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def hit_rate(self) -> float:
        total = len(self.outcomes)
        return self.cached_shards / total if total else 0.0

    @property
    def total_packages(self) -> int:
        return sum(len(o.payload["packages"]) for o in self.outcomes)

    def phase_set(self) -> List[int]:
        return sorted(
            index for outcome in self.outcomes for index in outcome.phases
        )


def shard_profile_digest(shard: List[MergedPhase], policy: str) -> str:
    """Content hash of one shard's merged records + provenance."""
    body = canonical_json(
        {"policy": policy, "phases": [phase.to_dict() for phase in shard]}
    )
    return hashlib.blake2b(body, digest_size=20).hexdigest()


def shard_payload(result: PackResult, phases: List[int]) -> Dict:
    """Reduce one pack to its canonical, store-able artifact payload."""
    coverage = result.coverage
    return {
        "phases": list(phases),
        "packages": [
            {
                "name": package.name,
                "root": package.root,
                "region_index": package.region_index,
                "static_size": package.static_size(),
                "exits": len(package.exits),
                "linked_exits": sum(1 for e in package.exits if e.is_linked),
            }
            for package in result.packages
        ],
        "expansion": result.expansion_row(),
        "unique_selected": result.unique_selected_instructions(),
        "coverage": {
            "package_fraction": coverage.package_fraction,
            "package_instructions": coverage.package_instructions,
            "original_instructions": coverage.original_instructions,
            "branches": coverage.branches,
            "launch_entries": coverage.launch_entries,
        },
        "diagnostics": [diag.render() for diag in result.diagnostics],
        "quarantined": sorted(result.quarantined_phases()),
    }


def _run_shard(task: Dict) -> Dict:
    """Worker: pack one shard (module-level, hence picklable)."""
    started = time.perf_counter()
    capture = obs.start_capture()
    with span("farm.shard", shard=task["shard"],
              phases=len(task["phases"])) as entry:
        workload = load_benchmark(
            task["benchmark"], task["input_name"], scale=task["scale"]
        )
        records = [record_from_entry(entry) for entry in task["records"]]
        packer = PipelineConfig.from_dict(task["packer"]).packer()
        result = packer.pack_records(workload, records)
        payload = shard_payload(result, task["phases"])
        annotate(entry, packages=len(payload["packages"]))
    done = {
        "shard": task["shard"],
        "key": task["key"],
        "payload": payload,
        "seconds": time.perf_counter() - started,
    }
    ledger = obs.finish_capture(capture)
    if ledger is not None:
        done["obs"] = ledger
    return done


def pack_fleet(
    fleet: FleetProfile,
    config: FarmConfig,
    jobs: Optional[int] = None,
    store: Optional[ArtifactStore] = None,
) -> FleetPackResult:
    """Pack every merged phase, through the artifact store.

    Store lookups happen up front in the parent; only missed shards
    are dispatched to workers, and their payloads are persisted on the
    way back.  Results are identical for any ``jobs``.
    """
    if not fleet.phases:
        raise ServiceError(
            "fleet profile has no merged phases to pack",
            hint="the merge produced nothing — were all client "
                 "profiles rejected or below the min_runs quorum?",
        )
    try:
        workload = load_benchmark(
            config.benchmark, config.input_name, scale=config.scale
        )
    except KeyError as exc:
        raise ServiceError(f"unknown benchmark binary: {exc}") from exc
    image = image_for(workload.program)
    store = store or default_store()
    fingerprint = config.fingerprint()

    size = max(1, config.shard_size)
    shards = [
        fleet.phases[start:start + size]
        for start in range(0, len(fleet.phases), size)
    ]

    with span("farm.pack_fleet", shards=len(shards)) as farm_span:
        outcomes: List[Optional[ShardOutcome]] = [None] * len(shards)
        tasks: List[Dict] = []
        for number, shard in enumerate(shards):
            digest = shard_profile_digest(shard, fleet.policy_fingerprint)
            key = artifact_key(image, digest, fingerprint)
            phases = [phase.index for phase in shard]
            started = time.perf_counter()
            payload = store.get(key)
            if payload is not None:
                outcomes[number] = ShardOutcome(
                    shard=number,
                    phases=phases,
                    key=key,
                    cached=True,
                    seconds=time.perf_counter() - started,
                    payload=payload,
                )
                inc("farm.cached_shards")
                continue
            tasks.append({
                "shard": number,
                "key": key,
                "phases": phases,
                # Consensus records travel in document form: plain dicts
                # pickle cheaply and rebuild identically in the worker.
                "records": [record_to_entry(phase.record) for phase in shard],
                "benchmark": config.benchmark,
                "input_name": config.input_name,
                "scale": config.scale,
                "packer": config.pipeline_dict(),
            })

        for done in parallel_map(_run_shard, tasks, jobs=jobs):
            obs.absorb(done.pop("obs", None))
            store.put(done["key"], done["payload"])
            outcomes[done["shard"]] = ShardOutcome(
                shard=done["shard"],
                phases=[p for p in done["payload"]["phases"]],
                key=done["key"],
                cached=False,
                seconds=done["seconds"],
                payload=done["payload"],
            )
            inc("farm.packed_shards")
        annotate(
            farm_span,
            cached=sum(1 for o in outcomes if o is not None and o.cached),
            packed=len(tasks),
        )
    return FleetPackResult(outcomes=list(outcomes))


__all__ = [
    "FarmConfig",
    "FleetPackResult",
    "ShardOutcome",
    "pack_fleet",
    "shard_payload",
    "shard_profile_digest",
]
