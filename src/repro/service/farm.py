"""Sharded packing farm: fan merged phases out to worker processes.

Each shard — a contiguous slice of the fleet profile's merged phases —
is packed independently against the same binary: the worker rebuilds
the benchmark workload, hands the shard's consensus records to
:meth:`~repro.postlink.vacuum.VacuumPacker.pack_records`, and reduces
the result to a canonical JSON payload (packages, expansion, coverage,
quarantine diagnostics).  Because a shard's payload is a pure function
of (binary, shard records, pack config), the farm caches it in the
content-addressed :class:`~repro.service.artifacts.ArtifactStore` and
consults the store *before* dispatching: repeated requests hit disk
instead of re-packing.

Determinism: shards are formed, keyed, and reported in phase order,
workers are pure, and the parent writes store entries from the
returned payloads — so ``jobs=1`` and ``jobs=N`` produce byte-identical
store entries and identical payloads, differing only in wall-clock
timings.  Sharding trades cross-shard package linking for parallelism:
packages are linked within a shard (``shard_size`` phases at a time)
but never across shards — ``shard_size=1`` is maximal fan-out,
``shard_size=len(phases)`` recovers the exact single-run pipeline.

Fault tolerance (:class:`FarmPolicy`): the farm is built to run
unattended under the re-optimization controller, so one bad shard can
never take down the fleet.  A worker exception, a crashed worker
process (``BrokenProcessPool``), or a shard that exceeds the per-shard
timeout costs that shard one bounded-retry attempt; between rounds the
parent sleeps a seeded exponential backoff, respawns the pool, and
re-dispatches *only* the unfinished shards.  A shard that exhausts its
attempts is quarantined: it ships a degraded payload that keeps the
original layout for its phases (empty package list, zero coverage)
instead of failing the request — and degraded payloads are never
persisted to the store, so a later healthy pack repairs them.  On the
fault-free path none of this machinery changes a single byte.
"""

from __future__ import annotations

import hashlib
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.api import PipelineConfig
from repro.errors import ServiceError
from repro.engine.trace_cache import image_for
from repro.experiments.parallel import resolve_jobs
from repro.hsd.serialize import record_from_entry, record_to_entry
from repro.obs import annotate, inc, span
from repro.postlink.vacuum import PackResult
from repro.workloads.suite import load_benchmark

from .aggregate import FleetProfile, MergedPhase
from .artifacts import ArtifactStore, artifact_key, canonical_json, default_store
from .chaos import chaos_hook


@dataclass(frozen=True)
class FarmConfig:
    """Everything that determines a shard's packing artifact."""

    benchmark: str
    input_name: str = "A"
    scale: Optional[float] = None
    classic: bool = False
    link: bool = True
    optimize: bool = True
    ordering: str = "best"
    #: Full :class:`~repro.api.PipelineConfig` document.  When given it
    #: defines the pack configuration *entirely* (the four scalar knobs
    #: above are ignored); when ``None`` the scalars apply over
    #: pipeline defaults.  Either way :meth:`pipeline_config` is the
    #: one resolved truth.
    pipeline: Optional[Dict] = None
    #: Merged phases per worker dispatch (1 = maximal fan-out).
    shard_size: int = 1

    def pipeline_config(self) -> PipelineConfig:
        """The resolved pack configuration of this farm."""
        if self.pipeline is not None:
            return PipelineConfig.from_dict(self.pipeline)
        return PipelineConfig(
            classic=self.classic,
            link=self.link,
            optimize=self.optimize,
            ordering=self.ordering,
        )

    def pipeline_dict(self) -> Dict:
        """Canonical pipeline document (what workers receive)."""
        return self.pipeline_config().to_dict()

    def fingerprint(self) -> str:
        """Pack-config part of the artifact key.

        ``shard_size`` is deliberately absent: it only decides how
        phases are *grouped*, and the grouping is already captured by
        each shard's profile digest — two farms that happen to form
        the same shard reuse each other's artifacts.  v2: the pack
        configuration participates as the full canonical pipeline
        document, so *every* knob (similarity policy, region growth,
        ...) addresses its own artifacts.
        """
        document = self.pipeline_dict()
        document.pop("obs", None)  # tracing never changes pack output
        doc = canonical_json(document).decode()
        return (
            f"farm:v2;bench={self.benchmark}/{self.input_name};"
            f"scale={self.scale!r};pipeline={doc}"
        )


@dataclass(frozen=True)
class FarmPolicy:
    """How the farm survives bad workers.

    The retry budget and timeout apply per shard; the backoff between
    retry rounds is seeded, so two runs of the same faulty farm sleep
    the same schedule.  None of these knobs participates in artifact
    keys — fault handling never changes what a healthy pack produces.
    """

    #: Dispatch attempts per shard before it is quarantined.
    max_attempts: int = 3
    #: Wall-clock limit for one shard dispatch (``None`` = unlimited).
    #: Enforcing a timeout requires a worker pool (``jobs >= 2``):
    #: inline execution cannot interrupt a hung shard.
    shard_timeout: Optional[float] = None
    #: First-retry backoff (seconds); doubles each round, with jitter.
    backoff_base: float = 0.05
    #: Backoff ceiling per round (seconds).
    backoff_cap: float = 2.0
    #: Seed of the jittered backoff schedule.
    backoff_seed: int = 0
    #: Quarantine exhausted shards into degraded original-layout
    #: payloads instead of raising (``False`` = strict: raise).
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")

    def backoff(self, round_index: int) -> float:
        """Seeded, jittered exponential backoff before retry round
        ``round_index`` (1-based)."""
        if self.backoff_base <= 0:
            return 0.0
        rng = random.Random(f"farm-backoff:{self.backoff_seed}:{round_index}")
        raw = self.backoff_base * (2 ** (round_index - 1))
        return min(self.backoff_cap, raw) * rng.uniform(0.5, 1.0)


@dataclass
class ShardOutcome:
    """One shard's artifact, and how it was obtained."""

    shard: int
    phases: List[int]
    key: str
    cached: bool
    seconds: float
    payload: Dict
    #: Dispatches this shard consumed (1 on the clean path).
    attempts: int = 1
    #: True when the shard exhausted its retries and fell back to the
    #: original layout for its phases.
    degraded: bool = False
    #: Last failure message (empty on the clean path).
    error: str = ""


@dataclass
class FleetPackResult:
    """All shard outcomes of one farm request, in phase order."""

    outcomes: List[ShardOutcome] = field(default_factory=list)

    @property
    def cached_shards(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def packed_shards(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def degraded_shards(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def retried_shards(self) -> int:
        return sum(1 for o in self.outcomes if o.attempts > 1)

    @property
    def ok(self) -> bool:
        """True when every shard shipped a real packing artifact."""
        return self.degraded_shards == 0

    @property
    def hit_rate(self) -> float:
        total = len(self.outcomes)
        return self.cached_shards / total if total else 0.0

    @property
    def total_packages(self) -> int:
        return sum(len(o.payload["packages"]) for o in self.outcomes)

    def phase_set(self) -> List[int]:
        return sorted(
            index for outcome in self.outcomes for index in outcome.phases
        )


def shard_profile_digest(shard: List[MergedPhase], policy: str) -> str:
    """Content hash of one shard's merged records + provenance."""
    body = canonical_json(
        {"policy": policy, "phases": [phase.to_dict() for phase in shard]}
    )
    return hashlib.blake2b(body, digest_size=20).hexdigest()


def shard_payload(result: PackResult, phases: List[int]) -> Dict:
    """Reduce one pack to its canonical, store-able artifact payload."""
    coverage = result.coverage
    return {
        "phases": list(phases),
        "packages": [
            {
                "name": package.name,
                "root": package.root,
                "region_index": package.region_index,
                "static_size": package.static_size(),
                "exits": len(package.exits),
                "linked_exits": sum(1 for e in package.exits if e.is_linked),
            }
            for package in result.packages
        ],
        "expansion": result.expansion_row(),
        "unique_selected": result.unique_selected_instructions(),
        "coverage": {
            "package_fraction": coverage.package_fraction,
            "package_instructions": coverage.package_instructions,
            "original_instructions": coverage.original_instructions,
            "branches": coverage.branches,
            "launch_entries": coverage.launch_entries,
        },
        "diagnostics": [diag.render() for diag in result.diagnostics],
        "quarantined": sorted(result.quarantined_phases()),
    }


def degraded_payload(phases: List[int], error: str, attempts: int) -> Dict:
    """Original-layout fallback for a shard that exhausted its retries.

    The phases keep running unpacked — no packages, zero package
    coverage — which is always semantically safe; the payload carries
    the failure in its diagnostics and is *never* written to the
    artifact store, so the next healthy farm pass repairs the shard.
    """
    return {
        "phases": list(phases),
        "packages": [],
        "expansion": None,
        "unique_selected": 0,
        "coverage": {
            "package_fraction": 0.0,
            "package_instructions": 0,
            "original_instructions": 0,
            "branches": 0,
            "launch_entries": 0,
        },
        "diagnostics": [
            f"[farm] shard degraded to original layout after "
            f"{attempts} attempt(s): {error}"
        ],
        "quarantined": list(phases),
        "degraded": True,
    }


def _run_shard(task: Dict) -> Dict:
    """Worker: pack one shard (module-level, hence picklable)."""
    started = time.perf_counter()
    capture = obs.start_capture()
    try:
        chaos_hook("farm.shard", task["shard"])
        with span("farm.shard", shard=task["shard"],
                  phases=len(task["phases"])) as entry:
            workload = load_benchmark(
                task["benchmark"], task["input_name"], scale=task["scale"]
            )
            records = [record_from_entry(entry) for entry in task["records"]]
            packer = PipelineConfig.from_dict(task["packer"]).packer()
            result = packer.pack_records(workload, records)
            payload = shard_payload(result, task["phases"])
            annotate(entry, packages=len(payload["packages"]))
        done = {
            "shard": task["shard"],
            "key": task["key"],
            "payload": payload,
            "seconds": time.perf_counter() - started,
        }
    finally:
        # Restore the parent registry even on a failing inline run —
        # a leaked capture would swallow the parent's own metrics.
        ledger = obs.finish_capture(capture)
    if ledger is not None:
        done["obs"] = ledger
    return done


def _run_batch_pool(
    batch: List[Dict], workers: int, timeout: Optional[float]
) -> Tuple[Dict[int, Dict], Dict[int, str]]:
    """One dispatch round over a fresh worker pool.

    Returns ``(results, errors)`` keyed by shard number.  Shards whose
    futures were abandoned (queued behind a hung worker, or cancelled
    when the pool broke) appear in neither map — they are re-dispatched
    next round without consuming a retry attempt.
    """
    results: Dict[int, Dict] = {}
    errors: Dict[int, str] = {}
    executor = ProcessPoolExecutor(max_workers=workers)
    future_of = {
        executor.submit(_run_shard, task): task["shard"] for task in batch
    }
    hung = False
    try:
        outstanding = set(future_of)
        while outstanding:
            done, outstanding = futures_wait(outstanding, timeout=timeout)
            if not done:
                # Nothing finished inside one full timeout window: the
                # running shards are hung.  Queued shards are cancelled
                # back to pending; the pool is abandoned.
                hung = True
                for future in outstanding:
                    if future.cancel():
                        continue
                    errors[future_of[future]] = (
                        f"shard timed out after {timeout:g}s"
                    )
                break
            for future in done:
                number = future_of[future]
                try:
                    results[number] = future.result()
                except BrokenProcessPool as exc:
                    errors[number] = (
                        f"worker pool broke: {exc or type(exc).__name__}"
                    )
                except Exception as exc:  # worker raised: charge a retry
                    errors[number] = f"{type(exc).__name__}: {exc}"
    finally:
        # Snapshot before shutdown: the executor clears _processes.
        processes = list(
            (getattr(executor, "_processes", None) or {}).values()
        )
        executor.shutdown(wait=not hung, cancel_futures=True)
        if hung:
            # A sleeping worker would otherwise outlive the farm; the
            # pool is already abandoned, so reap its processes.
            for process in processes:
                process.terminate()
    return results, errors


def _dispatch_shards(
    tasks: List[Dict], workers: int, policy: FarmPolicy
) -> Tuple[Dict[int, Dict], Dict[int, int], Dict[int, Tuple[int, str]]]:
    """Run shard tasks to completion under the farm policy.

    Returns ``(results, attempts, quarantined)``: worker result dicts,
    per-shard dispatch counts, and ``{shard: (attempts, last_error)}``
    for shards that exhausted their retry budget.
    """
    pending = {task["shard"]: task for task in tasks}
    failures = {number: 0 for number in pending}
    last_error: Dict[int, str] = {}
    results: Dict[int, Dict] = {}
    quarantined: Dict[int, Tuple[int, str]] = {}
    round_index = 0
    while pending:
        for number in sorted(pending):
            if failures[number] >= policy.max_attempts:
                quarantined[number] = (failures[number], last_error[number])
                del pending[number]
                inc("farm.shards_quarantined")
        if not pending:
            break
        if round_index:
            inc("farm.retry_rounds")
            if workers > 1:
                inc("farm.pool_respawns")
            delay = policy.backoff(round_index)
            if delay:
                time.sleep(delay)
        batch = [pending[number] for number in sorted(pending)]
        errors: Dict[int, str]
        if workers <= 1:
            errors = {}
            for task in batch:
                number = task["shard"]
                try:
                    results[number] = _run_shard(task)
                except Exception as exc:
                    errors[number] = f"{type(exc).__name__}: {exc}"
        else:
            batch_results, errors = _run_batch_pool(
                batch, workers, policy.shard_timeout
            )
            results.update(batch_results)
        for number in results:
            pending.pop(number, None)
        for number, message in errors.items():
            failures[number] += 1
            last_error[number] = message
            inc("farm.shard_failures")
        round_index += 1
    attempts = {
        number: failures[number] + (1 if number in results else 0)
        for number in failures
    }
    return results, attempts, quarantined


def pack_fleet(
    fleet: FleetProfile,
    config: FarmConfig,
    jobs: Optional[int] = None,
    store: Optional[ArtifactStore] = None,
    policy: Optional[FarmPolicy] = None,
) -> FleetPackResult:
    """Pack every merged phase, through the artifact store.

    Store lookups happen up front in the parent; only missed shards
    are dispatched to workers, and their payloads are persisted on the
    way back.  Results are identical for any ``jobs``.  Dispatch runs
    under ``policy`` (default :class:`FarmPolicy`): worker failures
    are retried with seeded backoff and exhausted shards degrade to
    the original layout instead of failing the fleet.
    """
    if not fleet.phases:
        raise ServiceError(
            "fleet profile has no merged phases to pack",
            hint="the merge produced nothing — were all client "
                 "profiles rejected or below the min_runs quorum?",
        )
    try:
        workload = load_benchmark(
            config.benchmark, config.input_name, scale=config.scale
        )
    except KeyError as exc:
        raise ServiceError(f"unknown benchmark binary: {exc}") from exc
    image = image_for(workload.program)
    store = store or default_store()
    policy = policy or FarmPolicy()
    fingerprint = config.fingerprint()
    workers = resolve_jobs(jobs)

    size = max(1, config.shard_size)
    shards = [
        fleet.phases[start:start + size]
        for start in range(0, len(fleet.phases), size)
    ]

    with span("farm.pack_fleet", shards=len(shards)) as farm_span:
        outcomes: List[Optional[ShardOutcome]] = [None] * len(shards)
        tasks: List[Dict] = []
        for number, shard in enumerate(shards):
            digest = shard_profile_digest(shard, fleet.policy_fingerprint)
            key = artifact_key(image, digest, fingerprint)
            phases = [phase.index for phase in shard]
            started = time.perf_counter()
            payload = store.get(key)
            if payload is not None:
                outcomes[number] = ShardOutcome(
                    shard=number,
                    phases=phases,
                    key=key,
                    cached=True,
                    seconds=time.perf_counter() - started,
                    payload=payload,
                )
                inc("farm.cached_shards")
                continue
            tasks.append({
                "shard": number,
                "key": key,
                "phases": phases,
                # Consensus records travel in document form: plain dicts
                # pickle cheaply and rebuild identically in the worker.
                "records": [record_to_entry(phase.record) for phase in shard],
                "benchmark": config.benchmark,
                "input_name": config.input_name,
                "scale": config.scale,
                "packer": config.pipeline_dict(),
            })

        task_of = {task["shard"]: task for task in tasks}
        results, attempts, exhausted = _dispatch_shards(
            tasks, workers, policy
        )
        if exhausted and not policy.quarantine:
            detail = "; ".join(
                f"shard {number}: {error} ({tries} attempt(s))"
                for number, (tries, error) in sorted(exhausted.items())
            )
            raise ServiceError(
                f"{len(exhausted)} farm shard(s) failed: {detail}",
                hint="set FarmPolicy.quarantine=True to degrade failed "
                     "shards to the original layout instead",
            )
        for number in sorted(results):
            done = results[number]
            obs.absorb(done.pop("obs", None))
            store.put(done["key"], done["payload"])
            outcomes[done["shard"]] = ShardOutcome(
                shard=done["shard"],
                phases=[p for p in done["payload"]["phases"]],
                key=done["key"],
                cached=False,
                seconds=done["seconds"],
                payload=done["payload"],
                attempts=attempts[number],
            )
            inc("farm.packed_shards")
        for number, (tries, error) in sorted(exhausted.items()):
            task = task_of[number]
            # Degraded payloads are deliberately NOT stored: the miss
            # stays a miss, and a later healthy pass repairs the shard.
            outcomes[number] = ShardOutcome(
                shard=number,
                phases=list(task["phases"]),
                key=task["key"],
                cached=False,
                seconds=0.0,
                payload=degraded_payload(task["phases"], error, tries),
                attempts=tries,
                degraded=True,
                error=error,
            )
        annotate(
            farm_span,
            cached=sum(1 for o in outcomes if o is not None and o.cached),
            packed=len(results),
            degraded=len(exhausted),
        )
    return FleetPackResult(outcomes=list(outcomes))


__all__ = [
    "FarmConfig",
    "FarmPolicy",
    "FleetPackResult",
    "ShardOutcome",
    "degraded_payload",
    "pack_fleet",
    "shard_payload",
    "shard_profile_digest",
]
