"""Content-addressed store of finished packing artifacts.

The packing farm's unit of work — pack one shard of merged phases
against one binary under one configuration — is a pure function of its
inputs, so its result is cached exactly like the trace cache caches
runs: by a content hash of everything that determines it,

    key = H(program image bytes + block symbols + entry,
            merged-profile digest (records + provenance),
            pack configuration fingerprint,
            store format version)

and never invalidated — a changed binary, profile, or knob simply
addresses a different entry.  Entries are canonical JSON (sorted keys,
minimal separators), so a given pack result has exactly one byte
representation: serial and parallel farms produce byte-identical
store entries, which the service tests assert directly.

Every entry embeds a ``stamp`` (its own key + format version),
mirroring the trace-cache v2 discipline: an entry whose payload
disagrees with its file name or schema — tampering, a partial copy, a
stale format — is detected on load, deleted, and treated as a miss,
never trusted.  Writes are atomic (shared tmp-file + rename helper
from :mod:`repro.engine.trace_cache`), so concurrent farm workers can
share one store directory.

Layout: one ``<key>.json`` per artifact under ``REPRO_ARTIFACT_STORE``
(or ``~/.cache/repro/artifacts``); setting the root to ``off`` (or
``0``/``none``/``disabled``) disables the store entirely.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.engine.trace_cache import DISABLED_VALUES, atomic_write
from repro.obs import inc
from repro.program.image import ProgramImage

#: Bump when the artifact payload schema changes; participates in both
#: the content key and the embedded stamp.
#: v2: shard payloads carry ``unique_selected`` (shared Table-3 count).
FORMAT_VERSION = 2

_ENV_DIR = "REPRO_ARTIFACT_STORE"

logger = logging.getLogger(__name__)


def canonical_json(payload: Dict) -> bytes:
    """The one byte representation of ``payload`` (sorted, minimal)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


def image_digest(image: ProgramImage) -> str:
    """Content hash of a linked binary (bytes + symbols + entry)."""
    digest = hashlib.blake2b(digest_size=20)
    digest.update(bytes(image.data))
    for symbol in image.symbols:
        digest.update(
            f"{symbol.function}/{symbol.label}@{symbol.address}".encode()
        )
    digest.update(image.program.entry.encode())
    return digest.hexdigest()


def artifact_key(
    image: ProgramImage, profile_digest: str, config_fingerprint: str
) -> str:
    """Content hash addressing one shard's packing artifact."""
    digest = hashlib.blake2b(digest_size=20)
    digest.update(f"artifact-v{FORMAT_VERSION}".encode())
    digest.update(image_digest(image).encode())
    digest.update(profile_digest.encode())
    digest.update(config_fingerprint.encode())
    return digest.hexdigest()


@dataclass
class ArtifactStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0

    @property
    def hit_rate(self) -> float:
        looked_up = self.hits + self.misses + self.errors
        return self.hits / looked_up if looked_up else 0.0


class ArtifactStore:
    """Disk store of canonical-JSON packing artifacts by content key."""

    def __init__(self, root: Optional[str] = None):
        env = os.environ.get(_ENV_DIR, "")
        if root is None:
            root = env
        self.enabled = str(root).strip().lower() not in DISABLED_VALUES
        if not root or not self.enabled:
            root = os.path.join(
                os.path.expanduser("~"), ".cache", "repro", "artifacts"
            )
        self.root = str(root)
        self.stats = ArtifactStats()

    def path_of(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload for ``key``, or ``None`` on a miss.

        Corrupt entries — unparseable JSON, a missing/mismatched
        stamp, a stale format version — are deleted and counted as
        errors; they are never returned.
        """
        if not self.enabled:
            return None
        path = self.path_of(key)
        try:
            with open(path, "rb") as handle:
                document = json.loads(handle.read())
            stamp = document["stamp"]
            if stamp["key"] != key or stamp["version"] != FORMAT_VERSION:
                raise ValueError("stamp mismatch")
            payload = document["payload"]
            if not isinstance(payload, dict):
                raise ValueError("payload must be an object")
        except FileNotFoundError:
            self.stats.misses += 1
            inc("artifact_store.misses")
            return None
        except Exception as exc:  # corrupt/foreign entry: drop and miss
            self.stats.errors += 1
            inc("artifact_store.errors")
            inc("service.artifacts.corrupt")
            logger.warning(
                "artifact store: corrupt entry %s (%s: %s); deleting and "
                "treating as a miss", path, type(exc).__name__, exc,
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        inc("artifact_store.hits")
        return payload

    def put(self, key: str, payload: Dict) -> bool:
        """Persist a payload; returns False when the store is off or
        the write failed (the farm then just keeps its in-memory
        result)."""
        if not self.enabled:
            return False
        document = canonical_json(
            {
                "stamp": {"key": key, "version": FORMAT_VERSION},
                "payload": payload,
            }
        )
        try:
            atomic_write(
                self.root,
                self.path_of(key),
                lambda handle: handle.write(document),
            )
        except OSError:
            self.stats.errors += 1
            inc("artifact_store.errors")
            return False
        self.stats.puts += 1
        inc("artifact_store.puts")
        return True


_DEFAULT_STORE: Optional[ArtifactStore] = None


def default_store() -> ArtifactStore:
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore()
    return _DEFAULT_STORE


def reset_default_store() -> None:
    """Re-read the environment (tests repoint ``REPRO_ARTIFACT_STORE``)."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = None


__all__ = [
    "ArtifactStats",
    "ArtifactStore",
    "FORMAT_VERSION",
    "artifact_key",
    "canonical_json",
    "default_store",
    "image_digest",
    "reset_default_store",
]
