"""Content-addressed store of finished packing artifacts.

The packing farm's unit of work — pack one shard of merged phases
against one binary under one configuration — is a pure function of its
inputs, so its result is cached exactly like the trace cache caches
runs: by a content hash of everything that determines it,

    key = H(program image bytes + block symbols + entry,
            merged-profile digest (records + provenance),
            pack configuration fingerprint,
            store format version)

and never invalidated — a changed binary, profile, or knob simply
addresses a different entry.  Entries are canonical JSON (sorted keys,
minimal separators), so a given pack result has exactly one byte
representation: serial and parallel farms produce byte-identical
store entries, which the service tests assert directly.

Every entry embeds a ``stamp`` (its own key + format version),
mirroring the trace-cache v2 discipline: an entry whose payload
disagrees with its file name or schema — tampering, a partial copy, a
stale format — is detected on load, deleted, and treated as a miss,
never trusted.  Writes are atomic (shared tmp-file + rename helper
from :mod:`repro.engine.trace_cache`), so concurrent farm workers can
share one store directory.

Layout: one ``<key>.json`` per artifact under ``REPRO_ARTIFACT_STORE``
(or ``~/.cache/repro/artifacts``); setting the root to ``off`` (or
``0``/``none``/``disabled``) disables the store entirely.

**Read-time bookkeeping and GC.**  Every successful :meth:`get` stamps
a ``<key>.hits.json`` sidecar (atomic, via the shared
:func:`~repro.engine.trace_cache.atomic_write`) carrying the entry's
``hit_count`` and ``last_hit`` wall-clock time, so the store knows
which artifacts still earn their bytes.  :meth:`ArtifactStore.evict`
shrinks the store under a byte cap by deleting the least-recently-hit
entries first (entries never read rank by file mtime); keys registered
with :meth:`~ArtifactStore.pin` — the long-running daemon pins its
aggregator checkpoint slots — are never evicted.  Counters
``service.artifacts.{hits,evictions}`` and the
``service.artifacts.bytes`` gauge surface in ``repro stats``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.engine.trace_cache import DISABLED_VALUES, atomic_write
from repro.obs import inc, set_gauge
from repro.program.image import ProgramImage

#: Bump when the artifact payload schema changes; participates in both
#: the content key and the embedded stamp.
#: v2: shard payloads carry ``unique_selected`` (shared Table-3 count).
FORMAT_VERSION = 2

_ENV_DIR = "REPRO_ARTIFACT_STORE"

#: Suffix of the read-bookkeeping sidecar written next to each entry.
HIT_SIDECAR_SUFFIX = ".hits.json"

logger = logging.getLogger(__name__)


def canonical_json(payload: Dict) -> bytes:
    """The one byte representation of ``payload`` (sorted, minimal)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


def image_digest(image: ProgramImage) -> str:
    """Content hash of a linked binary (bytes + symbols + entry)."""
    digest = hashlib.blake2b(digest_size=20)
    digest.update(bytes(image.data))
    for symbol in image.symbols:
        digest.update(
            f"{symbol.function}/{symbol.label}@{symbol.address}".encode()
        )
    digest.update(image.program.entry.encode())
    return digest.hexdigest()


def artifact_key(
    image: ProgramImage, profile_digest: str, config_fingerprint: str
) -> str:
    """Content hash addressing one shard's packing artifact."""
    digest = hashlib.blake2b(digest_size=20)
    digest.update(f"artifact-v{FORMAT_VERSION}".encode())
    digest.update(image_digest(image).encode())
    digest.update(profile_digest.encode())
    digest.update(config_fingerprint.encode())
    return digest.hexdigest()


@dataclass
class ArtifactStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        looked_up = self.hits + self.misses + self.errors
        return self.hits / looked_up if looked_up else 0.0


@dataclass
class ArtifactEntry:
    """One stored artifact as the GC sees it."""

    key: str
    #: Entry bytes on disk (payload file + hit sidecar).
    bytes: int
    #: Wall-clock time of the last read (file mtime if never read).
    last_hit: float
    hit_count: int
    pinned: bool = False


class ArtifactStore:
    """Disk store of canonical-JSON packing artifacts by content key."""

    def __init__(self, root: Optional[str] = None):
        env = os.environ.get(_ENV_DIR, "")
        if root is None:
            root = env
        self.enabled = str(root).strip().lower() not in DISABLED_VALUES
        if not root or not self.enabled:
            root = os.path.join(
                os.path.expanduser("~"), ".cache", "repro", "artifacts"
            )
        self.root = str(root)
        self.stats = ArtifactStats()
        #: Keys :meth:`evict` must never delete (checkpoint slots).
        self.pinned: Set[str] = set()

    def path_of(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def sidecar_of(self, key: str) -> str:
        return os.path.join(self.root, f"{key}{HIT_SIDECAR_SUFFIX}")

    @staticmethod
    def _check_key(key: str) -> None:
        """Reject keys whose payload path collides with another key's
        hit sidecar: ``path_of('<k>.hits')`` == ``sidecar_of('<k>')``,
        so such an entry would be invisible to :meth:`entries` and a
        read stamp of ``<k>`` would overwrite its payload."""
        if key.endswith(".hits"):
            raise ValueError(
                f"artifact key {key!r} collides with the "
                f"{HIT_SIDECAR_SUFFIX!r} sidecar namespace"
            )

    def pin(self, key: str) -> None:
        """Exempt ``key`` from eviction (e.g. a checkpoint slot)."""
        self._check_key(key)
        self.pinned.add(key)

    def unpin(self, key: str) -> None:
        self.pinned.discard(key)

    def _stamp_hit(self, key: str) -> None:
        """Record a read in the entry's ``.hits.json`` sidecar.

        Bookkeeping must never break a read: a corrupt sidecar resets
        the count, a failed write is dropped silently.
        """
        path = self.sidecar_of(key)
        count = 0
        try:
            with open(path, "rb") as handle:
                count = int(json.loads(handle.read())["hit_count"])
        except (OSError, ValueError, TypeError, KeyError):
            count = 0
        stamp = canonical_json({
            "key": key,
            "hit_count": count + 1,
            "last_hit": round(time.time(), 6),
        })
        try:
            atomic_write(self.root, path, lambda handle: handle.write(stamp))
        except OSError:
            return
        inc("service.artifacts.hits")

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload for ``key``, or ``None`` on a miss.

        Corrupt entries — unparseable JSON, a missing/mismatched
        stamp, a stale format version — are deleted and counted as
        errors; they are never returned.
        """
        if not self.enabled:
            return None
        if key.endswith(".hits"):
            # The would-be payload path is another key's hit sidecar;
            # a plain miss, without reading (or corrupt-deleting) it.
            self.stats.misses += 1
            inc("artifact_store.misses")
            return None
        path = self.path_of(key)
        try:
            with open(path, "rb") as handle:
                document = json.loads(handle.read())
            stamp = document["stamp"]
            if stamp["key"] != key or stamp["version"] != FORMAT_VERSION:
                raise ValueError("stamp mismatch")
            payload = document["payload"]
            if not isinstance(payload, dict):
                raise ValueError("payload must be an object")
        except FileNotFoundError:
            self.stats.misses += 1
            inc("artifact_store.misses")
            return None
        except Exception as exc:  # corrupt/foreign entry: drop and miss
            self.stats.errors += 1
            inc("artifact_store.errors")
            inc("service.artifacts.corrupt")
            logger.warning(
                "artifact store: corrupt entry %s (%s: %s); deleting and "
                "treating as a miss", path, type(exc).__name__, exc,
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        inc("artifact_store.hits")
        self._stamp_hit(key)
        return payload

    def put(self, key: str, payload: Dict) -> bool:
        """Persist a payload; returns False when the store is off or
        the write failed (the farm then just keeps its in-memory
        result).  Raises ``ValueError`` on a key that collides with
        the hit-sidecar namespace."""
        self._check_key(key)
        if not self.enabled:
            return False
        document = canonical_json(
            {
                "stamp": {"key": key, "version": FORMAT_VERSION},
                "payload": payload,
            }
        )
        try:
            atomic_write(
                self.root,
                self.path_of(key),
                lambda handle: handle.write(document),
            )
        except OSError:
            self.stats.errors += 1
            inc("artifact_store.errors")
            return False
        self.stats.puts += 1
        inc("artifact_store.puts")
        return True

    # -- GC ----------------------------------------------------------

    def entries(self) -> List[ArtifactEntry]:
        """Every stored artifact with its GC bookkeeping.

        Sidecars and in-flight temp files are not entries; an entry
        that was never read ranks by its payload file's mtime with a
        zero hit count.
        """
        if not self.enabled:
            return []
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        result: List[ArtifactEntry] = []
        for name in sorted(names):
            if (not name.endswith(".json")
                    or name.endswith(HIT_SIDECAR_SUFFIX)
                    or name.startswith(".tmp-")):
                continue
            key = name[: -len(".json")]
            path = os.path.join(self.root, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue  # raced with a concurrent eviction
            size = stat.st_size
            last_hit, hit_count = stat.st_mtime, 0
            sidecar = self.sidecar_of(key)
            try:
                size += os.path.getsize(sidecar)
                with open(sidecar, "rb") as handle:
                    stamp = json.loads(handle.read())
                last_hit = float(stamp["last_hit"])
                hit_count = int(stamp["hit_count"])
            except (OSError, ValueError, TypeError, KeyError):
                pass  # unread or corrupt sidecar: mtime ordering
            result.append(ArtifactEntry(
                key=key, bytes=size, last_hit=last_hit,
                hit_count=hit_count, pinned=key in self.pinned,
            ))
        return result

    def total_bytes(self) -> int:
        return sum(entry.bytes for entry in self.entries())

    def evict(self, max_bytes: int) -> List[str]:
        """Delete least-recently-hit entries until the store fits
        under ``max_bytes``; returns the evicted keys.

        LRU by ``last_hit`` (sidecar stamp, else payload mtime), ties
        broken by key for determinism.  Pinned keys — checkpoint slots
        a daemon registered with :meth:`pin` — are never deleted, even
        if the store stays over the cap because of them.
        """
        if not self.enabled or max_bytes is None:
            return []
        entries = self.entries()
        total = sum(entry.bytes for entry in entries)
        evicted: List[str] = []
        for entry in sorted(entries, key=lambda e: (e.last_hit, e.key)):
            if total <= max_bytes:
                break
            if entry.pinned:
                continue
            for path in (self.path_of(entry.key),
                         self.sidecar_of(entry.key)):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            total -= entry.bytes
            evicted.append(entry.key)
            self.stats.evictions += 1
            inc("service.artifacts.evictions")
        set_gauge("service.artifacts.bytes", total)
        return evicted


_DEFAULT_STORE: Optional[ArtifactStore] = None


def default_store() -> ArtifactStore:
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore()
    return _DEFAULT_STORE


def reset_default_store() -> None:
    """Re-read the environment (tests repoint ``REPRO_ARTIFACT_STORE``)."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = None


__all__ = [
    "ArtifactEntry",
    "ArtifactStats",
    "ArtifactStore",
    "FORMAT_VERSION",
    "HIT_SIDECAR_SUFFIX",
    "artifact_key",
    "canonical_json",
    "default_store",
    "image_digest",
    "reset_default_store",
]
