"""Simulated client fleet: many profiling runs of one binary.

At fleet scale, profiles of the same deployed binary arrive from many
machines running different inputs.  This module models that with the
existing workload generators: every simulated client runs the *same*
Table 1 benchmark program under a *divergent* branch-behavior seed
(different dynamic control flow, identical static binary) and ships
its Hot Spot Detector profile as a v2 document with a provenance
stamp (run id, seed, staleness epoch).

By default the whole fleet advances through the batched engine
(:mod:`repro.engine.batched`): the binary is built, compiled, and
linked once, and the N client runs execute as N lockstep rows over the
shared tables — bit-identical to the per-client path, which remains
available via ``REPRO_ENGINE=compiled`` (or ``reference``) and is the
automatic fallback whenever a ``mutate`` hook does something the
batch cannot express (see :func:`_batched_profiles`).

Runs are spread uniformly over ``epochs`` staleness epochs so the
aggregation layer's staleness accounting has something real to chew
on.  Everything is deterministic in ``(benchmark, input, runs,
base_seed, scale, epochs)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, List, Optional, Union

from repro.hsd.serialize import make_provenance, save_profile

if TYPE_CHECKING:  # pragma: no cover
    from .aggregate import IncrementalAggregator
from repro.postlink.vacuum import ProfileResult, VacuumPacker
from repro.workloads.base import Workload
from repro.workloads.suite import load_benchmark


@dataclass
class SimulatedClient:
    """One simulated client run: its identity and profile location."""

    run_id: str
    seed: int
    epoch: int
    path: str
    phases: int


def _batched_profiles(
    benchmark: str,
    input_name: str,
    runs: int,
    base_seed: int,
    scale: Optional[float],
    packer: VacuumPacker,
    mutate: Optional[Callable[[Workload, int], None]],
) -> Optional[List[ProfileResult]]:
    """Profile the whole fleet through the batched engine.

    Builds and links the benchmark once, computes each client's trace
    cache key with its seed (and drift mutation) applied, batches the
    misses through :class:`~repro.engine.batched.BatchedExecutor`, and
    runs the detector stage per row.  Bit-identical to the sequential
    path: same cache reads/writes, same records, same summaries.

    Returns ``None`` — fall back to per-client runs — when batching is
    disabled, ``runs <= 1``, or a ``mutate`` hook steps outside what
    one shared binary can express: replacing the program/behavior/
    script/limits objects, mutating program structure, or registering
    different stable ids per client.
    """
    from repro.engine.batched import (
        BatchedExecutor,
        batch_tables_for,
        fleet_batching_enabled,
        prob_matrix,
    )
    from repro.engine.compiled import (
        compile_program,
        compiled_enabled,
        program_signature,
    )
    from repro.engine.trace_cache import default_cache, image_for, trace_key
    from repro.obs import inc

    if runs <= 1 or not fleet_batching_enabled() or not compiled_enabled():
        return None
    workload = load_benchmark(benchmark, input_name, scale=scale)
    program = workload.program
    behavior = workload.behavior
    script = workload.phase_script
    limits = workload.limits
    signature = program_signature(program)
    pristine = behavior.bias_snapshot()
    tables = batch_tables_for(compile_program(program))
    phase_ids = [segment.phase_id for segment in script.segments]
    image = image_for(program)
    cache = default_cache()

    # Per row: apply seed + drift, address the run, capture the drifted
    # probability matrix, then restore so the next row's mutate sees the
    # same pristine fleet state a fresh per-client build would.
    seeds: List[int] = []
    keys: List[str] = []
    row_probs: Optional[List] = [] if mutate is not None else None
    ids_after_first = None
    for i in range(runs):
        behavior.seed = base_seed + i
        if mutate is not None:
            mutate(workload, i)
            if (
                workload.program is not program
                or workload.behavior is not behavior
                or workload.phase_script is not script
                or workload.limits is not limits
                or program_signature(program) != signature
            ):
                behavior.restore_biases(pristine)
                return None
            if ids_after_first is None:
                ids_after_first = dict(behavior._stable_id)
            elif behavior._stable_id != ids_after_first:
                behavior.restore_biases(pristine)
                return None
            row_probs.append(prob_matrix(behavior, tables, phase_ids))
        keys.append(trace_key(program, behavior, script, limits, image=image))
        seeds.append(base_seed + i)
        if mutate is not None:
            behavior.restore_biases(pristine)

    traces = [cache.get(key, program, image=image) for key in keys]
    misses = [i for i, trace in enumerate(traces) if trace is None]
    if misses:
        executor = BatchedExecutor(
            program,
            behavior,
            script,
            seeds=[seeds[i] for i in misses],
            limits=limits,
            row_probs=(
                [row_probs[i] for i in misses]
                if row_probs is not None
                else None
            ),
        )
        run = executor.run_traced()
        for slot, trace in zip(misses, run.traces):
            traces[slot] = trace
            inc("engine.simulated_branches", trace.summary.branches)
            cache.put(keys[slot], trace, program, image=image)

    return [
        packer.profile_trace(workload, trace, image=image) for trace in traces
    ]


def simulate_fleet(
    benchmark: str,
    input_name: str,
    runs: int,
    out_dir: Union[str, Path],
    base_seed: int = 0,
    epochs: int = 1,
    scale: Optional[float] = None,
    packer: Optional[VacuumPacker] = None,
    epoch_offset: int = 0,
    run_prefix: str = "r",
    file_prefix: str = "client",
    mutate: Optional[Callable[[Workload, int], None]] = None,
    aggregator: Optional["IncrementalAggregator"] = None,
) -> List[SimulatedClient]:
    """Profile ``runs`` simulated clients and persist their documents.

    Client ``i`` reruns the benchmark with behavior seed
    ``base_seed + i`` and lands in epoch ``epoch_offset + i * epochs
    // runs``.  The documents are written as ``<file_prefix>-<i>.json``
    under ``out_dir`` with run ids ``...#<run_prefix><i>``; the drift
    controller batches one ``simulate_fleet`` call per service epoch,
    using the prefixes to keep run ids unique across batches.

    ``mutate`` (called with the freshly built workload and the client
    index, after the behavior seed is set) is the drift hook: it edits
    branch behavior in place before profiling, modelling a fleet whose
    dynamic control flow has moved away from the shipped profile.

    The fleet advances through the batched lockstep engine by default
    (build/compile/link once, one numpy row per client); set
    ``REPRO_ENGINE=compiled`` to force the original per-client loop.
    Both paths write byte-identical documents.

    ``aggregator`` (an
    :class:`~repro.service.aggregate.IncrementalAggregator`) streams
    each document into the live merged state as it is written, so the
    fleet is absorbed while it is generated instead of re-ingested
    afterwards; re-running over an unchanged directory deduplicates.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    packer = packer or VacuumPacker()
    profiles = _batched_profiles(
        benchmark, input_name, runs, base_seed, scale, packer, mutate
    )
    clients: List[SimulatedClient] = []
    for i in range(runs):
        if profiles is not None:
            profile = profiles[i]
        else:
            workload = load_benchmark(benchmark, input_name, scale=scale)
            # Same binary, divergent dynamic behavior: only the branch
            # outcome seed changes, never the program.
            workload.behavior.seed = base_seed + i
            if mutate is not None:
                mutate(workload, i)
            profile = packer.profile(workload)
        seed = base_seed + i
        run_id = f"{benchmark}/{input_name}#{run_prefix}{i:04d}"
        epoch = epoch_offset + (i * epochs // runs if runs else 0)
        path = out / f"{file_prefix}-{i:04d}.json"
        save_profile(
            path,
            profile.records,
            meta={
                "benchmark": f"{benchmark}/{input_name}",
                "scale": scale,
                "provenance": make_provenance(run_id, seed, epoch),
            },
        )
        if aggregator is not None:
            aggregator.ingest_path(path)
        clients.append(SimulatedClient(
            run_id=run_id,
            seed=seed,
            epoch=epoch,
            path=str(path),
            phases=profile.phase_count,
        ))
    return clients


__all__ = ["SimulatedClient", "simulate_fleet"]
