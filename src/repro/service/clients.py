"""Simulated client fleet: many profiling runs of one binary.

At fleet scale, profiles of the same deployed binary arrive from many
machines running different inputs.  This module models that with the
existing workload generators: every simulated client runs the *same*
Table 1 benchmark program under a *divergent* branch-behavior seed
(different dynamic control flow, identical static binary) and ships
its Hot Spot Detector profile as a v2 document with a provenance
stamp (run id, seed, staleness epoch).

Runs are spread uniformly over ``epochs`` staleness epochs so the
aggregation layer's staleness accounting has something real to chew
on.  Everything is deterministic in ``(benchmark, input, runs,
base_seed, scale, epochs)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.hsd.serialize import make_provenance, save_profile
from repro.postlink.vacuum import VacuumPacker
from repro.workloads.suite import load_benchmark


@dataclass
class SimulatedClient:
    """One simulated client run: its identity and profile location."""

    run_id: str
    seed: int
    epoch: int
    path: str
    phases: int


def simulate_fleet(
    benchmark: str,
    input_name: str,
    runs: int,
    out_dir: Union[str, Path],
    base_seed: int = 0,
    epochs: int = 1,
    scale: Optional[float] = None,
    packer: Optional[VacuumPacker] = None,
) -> List[SimulatedClient]:
    """Profile ``runs`` simulated clients and persist their documents.

    Client ``i`` reruns the benchmark with behavior seed
    ``base_seed + i`` and lands in epoch ``i * epochs // runs``.  The
    documents are written as ``client-<i>.json`` under ``out_dir``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    packer = packer or VacuumPacker()
    clients: List[SimulatedClient] = []
    for i in range(runs):
        workload = load_benchmark(benchmark, input_name, scale=scale)
        seed = base_seed + i
        # Same binary, divergent dynamic behavior: only the branch
        # outcome seed changes, never the program.
        workload.behavior.seed = seed
        profile = packer.profile(workload)
        run_id = f"{benchmark}/{input_name}#r{i:04d}"
        epoch = i * epochs // runs if runs else 0
        path = out / f"client-{i:04d}.json"
        save_profile(
            path,
            profile.records,
            meta={
                "benchmark": f"{benchmark}/{input_name}",
                "scale": scale,
                "provenance": make_provenance(run_id, seed, epoch),
            },
        )
        clients.append(SimulatedClient(
            run_id=run_id,
            seed=seed,
            epoch=epoch,
            path=str(path),
            phases=profile.phase_count,
        ))
    return clients


__all__ = ["SimulatedClient", "simulate_fleet"]
