"""Simulated client fleet: many profiling runs of one binary.

At fleet scale, profiles of the same deployed binary arrive from many
machines running different inputs.  This module models that with the
existing workload generators: every simulated client runs the *same*
Table 1 benchmark program under a *divergent* branch-behavior seed
(different dynamic control flow, identical static binary) and ships
its Hot Spot Detector profile as a v2 document with a provenance
stamp (run id, seed, staleness epoch).

Runs are spread uniformly over ``epochs`` staleness epochs so the
aggregation layer's staleness accounting has something real to chew
on.  Everything is deterministic in ``(benchmark, input, runs,
base_seed, scale, epochs)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.hsd.serialize import make_provenance, save_profile
from repro.postlink.vacuum import VacuumPacker
from repro.workloads.base import Workload
from repro.workloads.suite import load_benchmark


@dataclass
class SimulatedClient:
    """One simulated client run: its identity and profile location."""

    run_id: str
    seed: int
    epoch: int
    path: str
    phases: int


def simulate_fleet(
    benchmark: str,
    input_name: str,
    runs: int,
    out_dir: Union[str, Path],
    base_seed: int = 0,
    epochs: int = 1,
    scale: Optional[float] = None,
    packer: Optional[VacuumPacker] = None,
    epoch_offset: int = 0,
    run_prefix: str = "r",
    file_prefix: str = "client",
    mutate: Optional[Callable[[Workload, int], None]] = None,
) -> List[SimulatedClient]:
    """Profile ``runs`` simulated clients and persist their documents.

    Client ``i`` reruns the benchmark with behavior seed
    ``base_seed + i`` and lands in epoch ``epoch_offset + i * epochs
    // runs``.  The documents are written as ``<file_prefix>-<i>.json``
    under ``out_dir`` with run ids ``...#<run_prefix><i>``; the drift
    controller batches one ``simulate_fleet`` call per service epoch,
    using the prefixes to keep run ids unique across batches.

    ``mutate`` (called with the freshly built workload and the client
    index, after the behavior seed is set) is the drift hook: it edits
    branch behavior in place before profiling, modelling a fleet whose
    dynamic control flow has moved away from the shipped profile.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    packer = packer or VacuumPacker()
    clients: List[SimulatedClient] = []
    for i in range(runs):
        workload = load_benchmark(benchmark, input_name, scale=scale)
        seed = base_seed + i
        # Same binary, divergent dynamic behavior: only the branch
        # outcome seed changes, never the program.
        workload.behavior.seed = seed
        if mutate is not None:
            mutate(workload, i)
        profile = packer.profile(workload)
        run_id = f"{benchmark}/{input_name}#{run_prefix}{i:04d}"
        epoch = epoch_offset + (i * epochs // runs if runs else 0)
        path = out / f"{file_prefix}-{i:04d}.json"
        save_profile(
            path,
            profile.records,
            meta={
                "benchmark": f"{benchmark}/{input_name}",
                "scale": scale,
                "provenance": make_provenance(run_id, seed, epoch),
            },
        )
        clients.append(SimulatedClient(
            run_id=run_id,
            seed=seed,
            epoch=epoch,
            path=str(path),
            phases=profile.phase_count,
        ))
    return clients


__all__ = ["SimulatedClient", "simulate_fleet"]
