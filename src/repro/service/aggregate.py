"""Cross-run hot-spot aggregation: many client profiles, one consensus.

The paper's workflow is single-run: one Hot Spot Detector profile
feeds one packing pass.  At fleet scale the profiles arrive from many
client runs of the *same binary* — different inputs, different days —
and must be merged before the optimizer runs (the BOLT deployment
model).  This module does that merge in three steps:

1. **ingest** — load serialized profile documents
   (:mod:`repro.hsd.serialize`), quarantining corrupt ones with typed
   diagnostics instead of failing the batch;
2. **cluster** — group phase records across runs by the paper's own
   branch-set similarity criteria (section 3.1's 30 % rule + bias
   flips, via :func:`repro.hsd.filtering.same_hot_spot`): records
   that the single-run software filter would have called "the same
   hot spot" are the same fleet phase;
3. **merge** — combine each cluster's BBB branch profiles with
   execution-weighted counter averaging (a heavy client run moves the
   consensus more than a short one) into one consensus
   :class:`~repro.hsd.records.HotSpotRecord` per phase, dropping
   branches seen by too few contributors (``branch_quorum``).

Every merged phase carries provenance: the contributing run ids, an
agreement score (mean branch-set overlap between each contributor and
the consensus), and epoch bounds from the profiles' v2 provenance
stamps, so consumers can see how stale each phase is.

Everything is deterministic: runs are processed in sorted run-id
order, records in index order, and all merge arithmetic is a pure
function of the ingested documents — the same profile set always
produces the same fleet profile (and therefore the same artifact-store
keys downstream).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ServiceError
from repro.obs import inc
from repro.hsd.filtering import SimilarityPolicy, missing_fraction, same_hot_spot
from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.hsd.serialize import (
    ProfileDocument,
    ProfileFormatError,
    load_document,
    record_to_entry,
)

from .artifacts import canonical_json


# ---------------------------------------------------------------------------
# ingest
# ---------------------------------------------------------------------------

@dataclass
class ClientRun:
    """One ingested client profile document."""

    run_id: str
    seed: Optional[int]
    epoch: int
    path: str
    records: List[HotSpotRecord]

    @classmethod
    def from_document(cls, path: str, doc: ProfileDocument) -> "ClientRun":
        run_id = doc.run_id or Path(path).stem
        return cls(
            run_id=run_id,
            seed=doc.seed,
            epoch=doc.epoch,
            path=str(path),
            records=doc.records,
        )


@dataclass
class RejectedProfile:
    """Why one profile document was quarantined during ingest."""

    path: str
    error: str
    exception_type: str
    hint: str = ""

    def render(self) -> str:
        line = f"{self.path}: [{self.exception_type}] {self.error}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line


@dataclass
class IngestResult:
    """Usable client runs plus the quarantined rejects."""

    runs: List[ClientRun] = field(default_factory=list)
    rejected: List[RejectedProfile] = field(default_factory=list)


def ingest_paths(paths: Iterable[Union[str, Path]]) -> IngestResult:
    """Load profile documents, quarantining unparseable ones.

    A corrupt document is a typed, per-profile failure
    (:class:`~repro.hsd.serialize.ProfileFormatError`): it lands in
    ``rejected`` with its hint and the rest of the batch proceeds —
    the fleet must not fail because one client shipped a bad file.
    """
    result = IngestResult()
    for path in sorted(str(p) for p in paths):
        try:
            doc = load_document(path)
        except (ProfileFormatError, OSError) as exc:
            hint = getattr(exc, "hint", "")
            inc("service.ingest.quarantined",
                exception_type=type(exc).__name__)
            result.rejected.append(RejectedProfile(
                path=path,
                error=str(exc),
                exception_type=type(exc).__name__,
                hint=hint,
            ))
            continue
        result.runs.append(ClientRun.from_document(path, doc))
    result.runs.sort(key=lambda run: run.run_id)
    return result


def ingest_dir(
    directory: Union[str, Path], pattern: str = "*.json"
) -> IngestResult:
    """Ingest every matching profile document under ``directory``."""
    root = Path(directory)
    if not root.is_dir():
        raise ServiceError(
            f"ingest directory {str(root)!r} does not exist",
            hint="run `repro ingest` (or point --profiles at a "
                 "directory of profile documents) first",
        )
    return ingest_paths(root.glob(pattern))


# ---------------------------------------------------------------------------
# clustering + merging
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MergePolicy:
    """Knobs of the cross-run merge."""

    #: The paper's similarity criteria decide cluster membership.
    similarity: SimilarityPolicy = SimilarityPolicy()
    #: Keep a branch in the consensus only if at least this fraction
    #: of the cluster's contributing records saw it.
    branch_quorum: float = 0.5
    #: Drop merged phases contributed by fewer distinct runs.
    min_runs: int = 1
    #: Epoch-window decay: drop client runs older than this many
    #: epochs behind the fleet max epoch *before* clustering, so a
    #: phase seen only by aged-out clients disappears from the
    #: consensus — and stays gone when the old documents are replayed
    #: through ingest (the window is anchored at the max epoch, which
    #: a replay cannot move backwards).  ``None`` = keep everything.
    epoch_window: Optional[int] = None
    #: Clock-skew clamp: a run's epoch is capped at the fleet median
    #: epoch plus this margin, so one client with a wild clock cannot
    #: define the max epoch (and thereby age every honest client out
    #: of the window).  ``None`` = trust client clocks.
    max_epoch_skew: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epoch_window is not None and self.epoch_window < 0:
            raise ValueError("epoch_window must be >= 0 (or None)")
        if self.max_epoch_skew is not None and self.max_epoch_skew < 0:
            raise ValueError("max_epoch_skew must be >= 0 (or None)")

    def fingerprint(self) -> str:
        sim = self.similarity
        return (
            f"merge:v2;missing={sim.missing_fraction!r};"
            f"bias={sim.bias_threshold!r};flips={sim.max_bias_flips};"
            f"quorum={self.branch_quorum!r};min_runs={self.min_runs};"
            f"window={self.epoch_window!r};skew={self.max_epoch_skew!r}"
        )


@dataclass
class PhaseProvenance:
    """Where one merged phase came from and how much it agrees."""

    #: Distinct contributing run ids, sorted.
    run_ids: List[str]
    #: Number of raw records merged (>= len(run_ids) when one run
    #: contributed several same-phase records).
    detections: int
    #: Mean branch-set overlap between each contributor and the
    #: consensus record (1.0 = every contributor saw every kept branch).
    agreement: float
    #: Oldest / newest contributing staleness epochs.
    first_epoch: int
    last_epoch: int
    #: Fleet max epoch minus ``last_epoch``: 0 = fresh, larger = the
    #: phase was last observed that many epochs ago.
    staleness: int = 0

    def to_dict(self) -> Dict:
        return {
            "run_ids": list(self.run_ids),
            "detections": self.detections,
            "agreement": round(self.agreement, 6),
            "first_epoch": self.first_epoch,
            "last_epoch": self.last_epoch,
            "staleness": self.staleness,
        }


@dataclass
class MergedPhase:
    """One fleet phase: a consensus record plus its provenance."""

    index: int
    record: HotSpotRecord
    provenance: PhaseProvenance

    def to_dict(self) -> Dict:
        return {
            "record": record_to_entry(self.record),
            "provenance": self.provenance.to_dict(),
        }


@dataclass
class FleetProfile:
    """The merged, provenance-stamped profile of a whole fleet."""

    phases: List[MergedPhase]
    runs: int
    rejected: int
    policy_fingerprint: str
    max_epoch: int = 0
    #: Runs dropped by the merge policy's epoch window.
    aged_out: int = 0

    @property
    def records(self) -> List[HotSpotRecord]:
        return [phase.record for phase in self.phases]

    def to_dict(self) -> Dict:
        return {
            "phases": [phase.to_dict() for phase in self.phases],
            "runs": self.runs,
            "rejected": self.rejected,
            "policy": self.policy_fingerprint,
            "max_epoch": self.max_epoch,
            "aged_out": self.aged_out,
        }

    def digest(self) -> str:
        """Content hash of the merged profile (artifact-key input)."""
        return hashlib.blake2b(
            canonical_json(self.to_dict()), digest_size=20
        ).hexdigest()


def _merge_cluster(
    members: Sequence[Tuple[ClientRun, HotSpotRecord]],
    index: int,
    policy: MergePolicy,
) -> MergedPhase:
    """Execution-weighted consensus of one cluster's records."""
    # Weight each contributing record by its own dynamic mass; an
    # all-zero cluster degenerates to an unweighted mean.
    weights = [max(record.total_executed(), 0) for _, record in members]
    if not any(weights):
        weights = [1] * len(members)

    by_address: Dict[int, List[Tuple[int, BranchProfile]]] = {}
    for (_, record), weight in zip(members, weights):
        for address, profile in record.branches.items():
            by_address.setdefault(address, []).append((weight, profile))

    quorum = max(1, int(round(policy.branch_quorum * len(members))))
    branches: Dict[int, BranchProfile] = {}
    for address in sorted(by_address):
        contributions = by_address[address]
        if len(contributions) < quorum:
            continue
        total_weight = sum(w for w, _ in contributions)
        executed = int(round(
            sum(w * p.executed for w, p in contributions) / total_weight
        ))
        taken = int(round(
            sum(w * p.taken for w, p in contributions) / total_weight
        ))
        branches[address] = BranchProfile(
            address, executed, min(taken, executed)
        )

    consensus = HotSpotRecord(
        index=index,
        detected_at_branch=members[0][1].detected_at_branch,
        branches=branches,
    )
    overlaps = [
        1.0 - missing_fraction(record, consensus) for _, record in members
    ]
    epochs = [run.epoch for run, _ in members]
    run_ids = sorted({run.run_id for run, _ in members})
    return MergedPhase(
        index=index,
        record=consensus,
        provenance=PhaseProvenance(
            run_ids=run_ids,
            detections=len(members),
            agreement=sum(overlaps) / len(overlaps),
            first_epoch=min(epochs),
            last_epoch=max(epochs),
        ),
    )


def merge_runs(
    ingest: Union[IngestResult, Sequence[ClientRun]],
    policy: Optional[MergePolicy] = None,
) -> FleetProfile:
    """Cluster and merge the ingested runs into one fleet profile."""
    policy = policy or MergePolicy()
    if isinstance(ingest, IngestResult):
        runs, rejected = ingest.runs, len(ingest.rejected)
    else:
        runs, rejected = list(ingest), 0
    if not runs:
        raise ServiceError(
            "no usable client profiles to merge",
            hint="every ingested document was rejected (or the "
                 "directory was empty); see the rejection list",
        )

    # Clock-skew clamp first: epochs feed the window and every
    # staleness stamp, so a wild client clock must be contained before
    # any epoch arithmetic happens.  The reference is the fleet median
    # (robust: a single skewed client cannot move it).
    if policy.max_epoch_skew is not None:
        epochs = sorted(run.epoch for run in runs)
        ceiling = epochs[(len(epochs) - 1) // 2] + policy.max_epoch_skew
        clamped: List[ClientRun] = []
        for run in runs:
            if run.epoch > ceiling:
                inc("service.merge.epoch_clamped")
                run = replace(run, epoch=ceiling)
            clamped.append(run)
        runs = clamped

    max_epoch = max(run.epoch for run in runs)
    aged_out = 0
    if policy.epoch_window is not None:
        fresh = [
            run for run in runs
            if run.epoch >= max_epoch - policy.epoch_window
        ]
        aged_out = len(runs) - len(fresh)
        if aged_out:
            inc("service.merge.aged_out", aged_out)
        runs = fresh

    # Greedy clustering in deterministic order; each cluster is
    # represented by its first member (the anchor), so membership does
    # not depend on merge arithmetic.
    clusters: List[List[Tuple[ClientRun, HotSpotRecord]]] = []
    for run in sorted(runs, key=lambda r: r.run_id):
        for record in sorted(run.records, key=lambda r: r.index):
            if not record.branches:
                continue
            for members in clusters:
                if same_hot_spot(record, members[0][1], policy.similarity):
                    members.append((run, record))
                    break
            else:
                clusters.append([(run, record)])

    phases = []
    for members in clusters:
        if len({run.run_id for run, _ in members}) < policy.min_runs:
            continue
        phase = _merge_cluster(members, len(phases), policy)
        phase.provenance.staleness = max_epoch - phase.provenance.last_epoch
        phases.append(phase)
    return FleetProfile(
        phases=phases,
        runs=len(runs),
        rejected=rejected,
        policy_fingerprint=policy.fingerprint(),
        max_epoch=max_epoch,
        aged_out=aged_out,
    )


__all__ = [
    "ClientRun",
    "FleetProfile",
    "IngestResult",
    "MergePolicy",
    "MergedPhase",
    "PhaseProvenance",
    "RejectedProfile",
    "ingest_dir",
    "ingest_paths",
    "merge_runs",
]
