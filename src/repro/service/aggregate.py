"""Cross-run hot-spot aggregation: many client profiles, one consensus.

The paper's workflow is single-run: one Hot Spot Detector profile
feeds one packing pass.  At fleet scale the profiles arrive from many
client runs of the *same binary* — different inputs, different days —
and must be merged before the optimizer runs (the BOLT deployment
model).  This module does that merge in three steps:

1. **ingest** — load serialized profile documents
   (:mod:`repro.hsd.serialize`), quarantining corrupt ones with typed
   diagnostics instead of failing the batch;
2. **cluster** — group phase records across runs by the paper's own
   branch-set similarity criteria (section 3.1's 30 % rule + bias
   flips, via :func:`repro.hsd.filtering.same_hot_spot`): records
   that the single-run software filter would have called "the same
   hot spot" are the same fleet phase;
3. **merge** — combine each cluster's BBB branch profiles with
   execution-weighted counter averaging (a heavy client run moves the
   consensus more than a short one) into one consensus
   :class:`~repro.hsd.records.HotSpotRecord` per phase, dropping
   branches seen by too few contributors (``branch_quorum``).

Every merged phase carries provenance: the contributing run ids, an
agreement score (mean branch-set overlap between each contributor and
the consensus), and epoch bounds from the profiles' v2 provenance
stamps, so consumers can see how stale each phase is.

Everything is deterministic: runs are processed in sorted run-id
order, records in index order, and all merge arithmetic is a pure
function of the ingested documents — the same profile set always
produces the same fleet profile (and therefore the same artifact-store
keys downstream).
"""

from __future__ import annotations

import hashlib
import logging
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ServiceError
from repro.obs import inc
from repro.hsd.filtering import SimilarityPolicy, missing_fraction, same_hot_spot
from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.hsd.serialize import (
    ProfileDocument,
    ProfileFormatError,
    document_from_dict,
    document_from_json,
    load_document,
    record_from_entry,
    record_to_entry,
)

from .artifacts import canonical_json

logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# ingest
# ---------------------------------------------------------------------------

@dataclass
class ClientRun:
    """One ingested client profile document."""

    run_id: str
    seed: Optional[int]
    epoch: int
    path: str
    records: List[HotSpotRecord]

    @classmethod
    def from_document(cls, path: str, doc: ProfileDocument) -> "ClientRun":
        run_id = doc.run_id or Path(path).stem
        return cls(
            run_id=run_id,
            seed=doc.seed,
            epoch=doc.epoch,
            path=str(path),
            records=doc.records,
        )


@dataclass
class RejectedProfile:
    """Why one profile document was quarantined during ingest."""

    path: str
    error: str
    exception_type: str
    hint: str = ""
    #: Validation stage that failed: ``read`` (filesystem), or one of
    #: :data:`repro.hsd.serialize.VALIDATION_STAGES` (``parse``,
    #: ``schema``, ``records``, ``provenance``).
    stage: str = "parse"

    def render(self) -> str:
        line = f"{self.path}: [{self.exception_type}/{self.stage}] {self.error}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line


@dataclass
class IngestResult:
    """Usable client runs plus the quarantined rejects."""

    runs: List[ClientRun] = field(default_factory=list)
    rejected: List[RejectedProfile] = field(default_factory=list)


def quarantine_profile(path: str, exc: Exception) -> RejectedProfile:
    """Record one quarantined document *after* validation finished.

    The ``service.ingest.quarantined`` counter is incremented here —
    once the failing validation stage is known — never earlier, so the
    metric attributes causes correctly: it is labeled with both the
    exception type and the stage that rejected the document (``read``
    for filesystem errors, otherwise the
    :attr:`~repro.hsd.serialize.ProfileFormatError.stage` of the
    parse/schema/records/provenance check that failed).
    """
    stage = getattr(exc, "stage", None) or (
        "read" if isinstance(exc, OSError) else "provenance"
    )
    rejected = RejectedProfile(
        path=path,
        error=str(exc),
        exception_type=type(exc).__name__,
        hint=getattr(exc, "hint", ""),
        stage=stage,
    )
    inc("service.ingest.quarantined",
        exception_type=rejected.exception_type, stage=rejected.stage)
    return rejected


def load_client_run(path: str) -> ClientRun:
    """Load and *fully* validate one document as a :class:`ClientRun`.

    Raises :class:`~repro.hsd.serialize.ProfileFormatError` (or
    ``OSError``) — including for a provenance stamp whose fields parse
    as JSON but carry unusable types — so callers quarantine only
    after every validation stage has run.
    """
    doc = load_document(path)
    try:
        return ClientRun.from_document(path, doc)
    except (TypeError, ValueError) as exc:
        raise ProfileFormatError(
            f"unusable provenance stamp: {exc}", stage="provenance"
        ) from exc


def ingest_paths(paths: Iterable[Union[str, Path]]) -> IngestResult:
    """Load profile documents, quarantining unparseable ones.

    A corrupt document is a typed, per-profile failure
    (:class:`~repro.hsd.serialize.ProfileFormatError`): it lands in
    ``rejected`` with its hint and the rest of the batch proceeds —
    the fleet must not fail because one client shipped a bad file.
    """
    result = IngestResult()
    for path in sorted(str(p) for p in paths):
        try:
            result.runs.append(load_client_run(path))
        except (ProfileFormatError, OSError) as exc:
            result.rejected.append(quarantine_profile(path, exc))
    result.runs.sort(key=lambda run: run.run_id)
    return result


def ingest_dir(
    directory: Union[str, Path], pattern: str = "*.json"
) -> IngestResult:
    """Ingest every matching profile document under ``directory``."""
    root = Path(directory)
    if not root.is_dir():
        raise ServiceError(
            f"ingest directory {str(root)!r} does not exist",
            hint="run `repro ingest` (or point --profiles at a "
                 "directory of profile documents) first",
        )
    return ingest_paths(root.glob(pattern))


# ---------------------------------------------------------------------------
# clustering + merging
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MergePolicy:
    """Knobs of the cross-run merge."""

    #: The paper's similarity criteria decide cluster membership.
    similarity: SimilarityPolicy = SimilarityPolicy()
    #: Keep a branch in the consensus only if at least this fraction
    #: of the cluster's contributing records saw it.
    branch_quorum: float = 0.5
    #: Drop merged phases contributed by fewer distinct runs.
    min_runs: int = 1
    #: Epoch-window decay: drop client runs older than this many
    #: epochs behind the fleet max epoch *before* clustering, so a
    #: phase seen only by aged-out clients disappears from the
    #: consensus — and stays gone when the old documents are replayed
    #: through ingest (the window is anchored at the max epoch, which
    #: a replay cannot move backwards).  ``None`` = keep everything.
    epoch_window: Optional[int] = None
    #: Clock-skew clamp: a run's epoch is capped at the fleet median
    #: epoch plus this margin, so one client with a wild clock cannot
    #: define the max epoch (and thereby age every honest client out
    #: of the window).  ``None`` = trust client clocks.
    max_epoch_skew: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epoch_window is not None and self.epoch_window < 0:
            raise ValueError("epoch_window must be >= 0 (or None)")
        if self.max_epoch_skew is not None and self.max_epoch_skew < 0:
            raise ValueError("max_epoch_skew must be >= 0 (or None)")

    def fingerprint(self) -> str:
        sim = self.similarity
        return (
            f"merge:v2;missing={sim.missing_fraction!r};"
            f"bias={sim.bias_threshold!r};flips={sim.max_bias_flips};"
            f"quorum={self.branch_quorum!r};min_runs={self.min_runs};"
            f"window={self.epoch_window!r};skew={self.max_epoch_skew!r}"
        )


@dataclass
class PhaseProvenance:
    """Where one merged phase came from and how much it agrees."""

    #: Distinct contributing run ids, sorted.
    run_ids: List[str]
    #: Number of raw records merged (>= len(run_ids) when one run
    #: contributed several same-phase records).
    detections: int
    #: Mean branch-set overlap between each contributor and the
    #: consensus record (1.0 = every contributor saw every kept branch).
    agreement: float
    #: Oldest / newest contributing staleness epochs.
    first_epoch: int
    last_epoch: int
    #: Fleet max epoch minus ``last_epoch``: 0 = fresh, larger = the
    #: phase was last observed that many epochs ago.
    staleness: int = 0

    def to_dict(self) -> Dict:
        return {
            "run_ids": list(self.run_ids),
            "detections": self.detections,
            "agreement": round(self.agreement, 6),
            "first_epoch": self.first_epoch,
            "last_epoch": self.last_epoch,
            "staleness": self.staleness,
        }

    @classmethod
    def from_dict(cls, entry: Dict) -> "PhaseProvenance":
        return cls(
            run_ids=[str(run_id) for run_id in entry["run_ids"]],
            detections=int(entry["detections"]),
            agreement=float(entry["agreement"]),
            first_epoch=int(entry["first_epoch"]),
            last_epoch=int(entry["last_epoch"]),
            staleness=int(entry.get("staleness", 0)),
        )


@dataclass
class MergedPhase:
    """One fleet phase: a consensus record plus its provenance."""

    index: int
    record: HotSpotRecord
    provenance: PhaseProvenance

    def to_dict(self) -> Dict:
        return {
            "record": record_to_entry(self.record),
            "provenance": self.provenance.to_dict(),
        }

    @classmethod
    def from_dict(cls, index: int, entry: Dict) -> "MergedPhase":
        return cls(
            index=index,
            record=record_from_entry(entry["record"]),
            provenance=PhaseProvenance.from_dict(entry["provenance"]),
        )


@dataclass
class FleetProfile:
    """The merged, provenance-stamped profile of a whole fleet."""

    phases: List[MergedPhase]
    runs: int
    rejected: int
    policy_fingerprint: str
    max_epoch: int = 0
    #: Runs dropped by the merge policy's epoch window.
    aged_out: int = 0

    @property
    def records(self) -> List[HotSpotRecord]:
        return [phase.record for phase in self.phases]

    def to_dict(self) -> Dict:
        return {
            "phases": [phase.to_dict() for phase in self.phases],
            "runs": self.runs,
            "rejected": self.rejected,
            "policy": self.policy_fingerprint,
            "max_epoch": self.max_epoch,
            "aged_out": self.aged_out,
        }

    def digest(self) -> str:
        """Content hash of the merged profile (artifact-key input)."""
        return hashlib.blake2b(
            canonical_json(self.to_dict()), digest_size=20
        ).hexdigest()

    @classmethod
    def from_dict(cls, document: Dict) -> "FleetProfile":
        """Rebuild a fleet profile from :meth:`to_dict` output.

        The wire-format inverse used by ``GET /snapshot`` consumers:
        ``from_dict(p.to_dict())`` round-trips bit-exactly (the
        provenance agreement score is already rounded to the wire's
        six decimals by ``to_dict``), so re-serializing reproduces the
        same :meth:`digest`.  Raises ``KeyError``/``TypeError``/
        ``ValueError`` on a malformed document.
        """
        return cls(
            phases=[
                MergedPhase.from_dict(index, entry)
                for index, entry in enumerate(document["phases"])
            ],
            runs=int(document["runs"]),
            rejected=int(document["rejected"]),
            policy_fingerprint=str(document["policy"]),
            max_epoch=int(document["max_epoch"]),
            aged_out=int(document.get("aged_out", 0)),
        )


def _merge_cluster(
    members: Sequence[Tuple[ClientRun, HotSpotRecord]],
    index: int,
    policy: MergePolicy,
) -> MergedPhase:
    """Execution-weighted consensus of one cluster's records."""
    # Weight each contributing record by its own dynamic mass; an
    # all-zero cluster degenerates to an unweighted mean.
    weights = [max(record.total_executed(), 0) for _, record in members]
    if not any(weights):
        weights = [1] * len(members)

    by_address: Dict[int, List[Tuple[int, BranchProfile]]] = {}
    for (_, record), weight in zip(members, weights):
        for address, profile in record.branches.items():
            by_address.setdefault(address, []).append((weight, profile))

    quorum = max(1, int(round(policy.branch_quorum * len(members))))
    branches: Dict[int, BranchProfile] = {}
    for address in sorted(by_address):
        contributions = by_address[address]
        if len(contributions) < quorum:
            continue
        total_weight = sum(w for w, _ in contributions)
        executed = int(round(
            sum(w * p.executed for w, p in contributions) / total_weight
        ))
        taken = int(round(
            sum(w * p.taken for w, p in contributions) / total_weight
        ))
        branches[address] = BranchProfile(
            address, executed, min(taken, executed)
        )

    consensus = HotSpotRecord(
        index=index,
        detected_at_branch=members[0][1].detected_at_branch,
        branches=branches,
    )
    overlaps = [
        1.0 - missing_fraction(record, consensus) for _, record in members
    ]
    epochs = [run.epoch for run, _ in members]
    run_ids = sorted({run.run_id for run, _ in members})
    return MergedPhase(
        index=index,
        record=consensus,
        provenance=PhaseProvenance(
            run_ids=run_ids,
            detections=len(members),
            agreement=sum(overlaps) / len(overlaps),
            first_epoch=min(epochs),
            last_epoch=max(epochs),
        ),
    )


def merge_runs(
    ingest: Union[IngestResult, Sequence[ClientRun]],
    policy: Optional[MergePolicy] = None,
) -> FleetProfile:
    """Cluster and merge the ingested runs into one fleet profile."""
    policy = policy or MergePolicy()
    if isinstance(ingest, IngestResult):
        runs, rejected = ingest.runs, len(ingest.rejected)
    else:
        runs, rejected = list(ingest), 0
    if not runs:
        raise ServiceError(
            "no usable client profiles to merge",
            hint="every ingested document was rejected (or the "
                 "directory was empty); see the rejection list",
        )

    # Clock-skew clamp first: epochs feed the window and every
    # staleness stamp, so a wild client clock must be contained before
    # any epoch arithmetic happens.  The reference is the fleet median
    # (robust: a single skewed client cannot move it).
    if policy.max_epoch_skew is not None:
        epochs = sorted(run.epoch for run in runs)
        ceiling = epochs[(len(epochs) - 1) // 2] + policy.max_epoch_skew
        clamped: List[ClientRun] = []
        for run in runs:
            if run.epoch > ceiling:
                inc("service.merge.epoch_clamped")
                run = replace(run, epoch=ceiling)
            clamped.append(run)
        runs = clamped

    max_epoch = max(run.epoch for run in runs)
    aged_out = 0
    if policy.epoch_window is not None:
        fresh = [
            run for run in runs
            if run.epoch >= max_epoch - policy.epoch_window
        ]
        aged_out = len(runs) - len(fresh)
        if aged_out:
            inc("service.merge.aged_out", aged_out)
        runs = fresh

    # Greedy clustering in deterministic order; each cluster is
    # represented by its first member (the anchor), so membership does
    # not depend on merge arithmetic.
    clusters: List[List[Tuple[ClientRun, HotSpotRecord]]] = []
    for run in sorted(runs, key=lambda r: r.run_id):
        for record in sorted(run.records, key=lambda r: r.index):
            if not record.branches:
                continue
            for members in clusters:
                if same_hot_spot(record, members[0][1], policy.similarity):
                    members.append((run, record))
                    break
            else:
                clusters.append([(run, record)])

    phases = []
    for members in clusters:
        if len({run.run_id for run, _ in members}) < policy.min_runs:
            continue
        phase = _merge_cluster(members, len(phases), policy)
        phase.provenance.staleness = max_epoch - phase.provenance.last_epoch
        phases.append(phase)
    return FleetProfile(
        phases=phases,
        runs=len(runs),
        rejected=rejected,
        policy_fingerprint=policy.fingerprint(),
        max_epoch=max_epoch,
        aged_out=aged_out,
    )


# ---------------------------------------------------------------------------
# streaming incremental aggregation
# ---------------------------------------------------------------------------
#
# ``merge_runs`` re-clusters every document it has ever seen, so a
# service that re-aggregates on each arriving upload pays O(N) per
# document — O(N^2) over the fleet's life (BOLT's fleet-profile-
# aggregation bottleneck).  :class:`IncrementalAggregator` keeps the
# merged-phase clusters as *live state*: each arriving document is
# matched against existing cluster anchors with the paper's section
# 3.1 similarity criteria (O(phases) work) and folded in as integer
# running sums, so the merged counters it reports are bit-identical to
# the batch division no matter what order documents arrived in.
#
# Epoch handling is deliberately lazy.  Documents are folded into
# per-(cluster, epoch) buckets and the clamp/window arithmetic —
# median-anchored ``max_epoch_skew`` ceilings and ``epoch_window``
# aging — is evaluated against the *current* run-epoch multiset at
# snapshot time.  Evaluating it eagerly per arrival would make the
# result depend on arrival order (an early skewed clock would define a
# ceiling the batch merge, which sees everything at once, never uses).

#: Schema version of the serialized aggregator state; a checkpoint
#: carrying any other version is dropped as a miss (cold start).
AGGREGATOR_STATE_VERSION = 1

#: The two aggregation strategies ``--aggregator`` selects between.
AGGREGATOR_MODES = ("streaming", "batch")


@dataclass(frozen=True)
class ContractTolerance:
    """The determinism contract's stated tolerance.

    Ingest order must not change the merged profile beyond this, and
    the streaming aggregator must match the from-scratch batch
    aggregator within it.  Merged branch counters are maintained as
    integer running sums and divided once, so they are *bit-identical*
    whenever the two sides agree on cluster membership; the relative
    tolerance only absorbs a pathological greedy-membership flip
    between near-duplicate phases.  ``agreement`` is a float mean whose
    summation order differs between the two implementations, hence the
    tiny absolute tolerance.
    """

    #: Relative tolerance on merged ``executed``/``taken`` counters.
    counter_rel_tol: float = 1e-9
    #: Absolute tolerance on the provenance agreement score.
    agreement_abs_tol: float = 1e-9


#: The contract every suite workload and every tested ingest order is
#: held to (see ``docs/service.md``, "Determinism contract").
CONTRACT = ContractTolerance()


def equivalence_diffs(
    a: FleetProfile,
    b: FleetProfile,
    tolerance: ContractTolerance = CONTRACT,
) -> List[str]:
    """Every way two merged profiles disagree beyond the contract.

    Empty list = equivalent.  Phase membership, provenance (run ids,
    detections, epoch bounds, staleness), branch sets, and launch
    branches must match exactly; merged counters within
    ``counter_rel_tol`` relative; agreement within
    ``agreement_abs_tol`` absolute.
    """
    diffs: List[str] = []
    if len(a.phases) != len(b.phases):
        return [f"phase count: {len(a.phases)} != {len(b.phases)}"]
    for pa, pb in zip(a.phases, b.phases):
        label = f"phase {pa.index}"
        prov_a, prov_b = pa.provenance, pb.provenance
        if prov_a.run_ids != prov_b.run_ids:
            diffs.append(f"{label}: run_ids {prov_a.run_ids} != "
                         f"{prov_b.run_ids}")
            continue
        if prov_a.detections != prov_b.detections:
            diffs.append(f"{label}: detections {prov_a.detections} != "
                         f"{prov_b.detections}")
        for bound in ("first_epoch", "last_epoch", "staleness"):
            if getattr(prov_a, bound) != getattr(prov_b, bound):
                diffs.append(
                    f"{label}: {bound} {getattr(prov_a, bound)} != "
                    f"{getattr(prov_b, bound)}"
                )
        if abs(prov_a.agreement - prov_b.agreement) > \
                tolerance.agreement_abs_tol:
            diffs.append(f"{label}: agreement {prov_a.agreement!r} != "
                         f"{prov_b.agreement!r}")
        rec_a, rec_b = pa.record, pb.record
        if rec_a.detected_at_branch != rec_b.detected_at_branch:
            diffs.append(f"{label}: detected_at "
                         f"{rec_a.detected_at_branch:#x} != "
                         f"{rec_b.detected_at_branch:#x}")
        if rec_a.addresses != rec_b.addresses:
            diffs.append(
                f"{label}: branch sets differ "
                f"(only-a={sorted(rec_a.addresses - rec_b.addresses)}, "
                f"only-b={sorted(rec_b.addresses - rec_a.addresses)})"
            )
            continue
        for address in sorted(rec_a.addresses):
            ba, bb = rec_a.branches[address], rec_b.branches[address]
            for field_name in ("executed", "taken"):
                va, vb = getattr(ba, field_name), getattr(bb, field_name)
                if abs(va - vb) > tolerance.counter_rel_tol * max(
                        1, abs(va), abs(vb)):
                    diffs.append(f"{label}: branch {address:#x} "
                                 f"{field_name} {va} != {vb}")
    return diffs


def profiles_equivalent(
    a: FleetProfile,
    b: FleetProfile,
    tolerance: ContractTolerance = CONTRACT,
) -> bool:
    """True iff the two merged profiles satisfy the contract."""
    return not equivalence_diffs(a, b, tolerance)


class _Bucket:
    """Partial aggregates of one cluster's members from one raw epoch.

    Everything the exact batch merge needs, in O(addresses) memory
    independent of member count: per-address integer sums (count,
    contributing weight, weighted and unweighted executed/taken),
    member/weight totals, contributing run ids, the multiset of member
    branch-address sets (for the agreement score — deduplicated, since
    fleets of the same binary produce few distinct sets), and the
    bucket's anchor: its lexicographically-least ``(run_id, record
    index)`` member, whose record stands in for the cluster in
    similarity matching exactly like ``members[0]`` does in the batch
    clustering loop.
    """

    __slots__ = ("members", "zero_weight", "weight_total", "run_ids",
                 "sums", "address_sets", "anchor_key", "anchor_record")

    def __init__(self) -> None:
        self.members = 0
        self.zero_weight = 0
        self.weight_total = 0
        self.run_ids: set = set()
        #: address -> [count, weight_sum, w*executed, w*taken,
        #:             executed_sum, taken_sum]
        self.sums: Dict[int, List[int]] = {}
        #: frozenset(addresses) -> member multiplicity
        self.address_sets: Dict[frozenset, int] = {}
        self.anchor_key: Optional[Tuple[str, int]] = None
        self.anchor_record: Optional[HotSpotRecord] = None

    def fold(self, run: ClientRun, record: HotSpotRecord) -> None:
        weight = max(record.total_executed(), 0)
        self.members += 1
        if weight == 0:
            self.zero_weight += 1
        self.weight_total += weight
        self.run_ids.add(run.run_id)
        for address, profile in record.branches.items():
            entry = self.sums.get(address)
            if entry is None:
                self.sums[address] = [
                    1, weight,
                    weight * profile.executed, weight * profile.taken,
                    profile.executed, profile.taken,
                ]
            else:
                entry[0] += 1
                entry[1] += weight
                entry[2] += weight * profile.executed
                entry[3] += weight * profile.taken
                entry[4] += profile.executed
                entry[5] += profile.taken
        addresses = record.addresses
        self.address_sets[addresses] = self.address_sets.get(addresses, 0) + 1
        key = (run.run_id, record.index)
        if self.anchor_key is None or key < self.anchor_key:
            self.anchor_key = key
            self.anchor_record = record


#: A record's clustering behaviour under the paper's section 3.1
#: criteria is fully determined by its branch-address set and each
#: branch's bias class (``missing_fraction`` reads only address sets;
#: ``bias_flips`` reads only per-address ``bias(threshold)``).  Two
#: records with equal signatures are interchangeable in every
#: ``same_hot_spot`` test, which is what lets the aggregator group
#: arrivals by signature in O(record) and defer the greedy clustering
#: to snapshot time, where it runs over one representative per
#: signature in canonical order — the exact batch result, independent
#: of ingest order.
Signature = Tuple[Tuple[int, Optional[str]], ...]


def record_signature(
    record: HotSpotRecord, bias_threshold: float
) -> Signature:
    """The similarity-determining fingerprint of a hot-spot record."""
    return tuple(
        (address, profile.bias(bias_threshold))
        for address, profile in sorted(record.branches.items())
    )


class _SigGroup:
    """All arrivals sharing one similarity signature, by raw epoch."""

    __slots__ = ("buckets",)

    def __init__(self) -> None:
        self.buckets: Dict[int, _Bucket] = {}

    def fold(self, run: ClientRun, record: HotSpotRecord) -> None:
        bucket = self.buckets.get(run.epoch)
        if bucket is None:
            bucket = self.buckets[run.epoch] = _Bucket()
        bucket.fold(run, record)

    def view(self, alive) -> Optional[Tuple[Tuple[str, int],
                                            HotSpotRecord,
                                            List[Tuple[int, "_Bucket"]]]]:
        """(anchor key, anchor record, surviving buckets); None = aged.

        ``alive(epoch)`` is the current epoch-window predicate; a
        group whose every contribution has aged out takes no part in
        clustering — a recurring phase re-enters with fresh epoch
        bounds, exactly as the batch window filter would arrange.
        """
        anchor_key, anchor_record = None, None
        survivors: List[Tuple[int, _Bucket]] = []
        for epoch, bucket in self.buckets.items():
            if not alive(epoch):
                continue
            survivors.append((epoch, bucket))
            if anchor_key is None or bucket.anchor_key < anchor_key:
                anchor_key, anchor_record = (
                    bucket.anchor_key, bucket.anchor_record
                )
        if anchor_key is None:
            return None
        return anchor_key, anchor_record, survivors


class IncrementalAggregator:
    """Streaming counterpart of :func:`merge_runs`: O(record) per document.

    Maintains merged-phase state live.  Each arriving
    :class:`~repro.hsd.serialize.ProfileDocument` is folded into the
    group sharing its similarity signature (:func:`record_signature`)
    with execution-weighted integer counter sums; :meth:`snapshot`
    runs the paper's section 3.1 greedy clustering over one
    representative per surviving signature — in canonical
    first-occurrence order, against each cluster's founding record,
    exactly as :func:`merge_runs` walks individual records — and
    materializes the same :class:`FleetProfile`.  Because a record's
    behaviour under ``same_hot_spot`` depends only on its signature,
    and batch assigns every same-signature record to the same
    (first-matching, creation-ordered) cluster, the streaming result
    equals the batch result for **any** ingest order: membership,
    counters, and provenance are bit-identical, with the determinism
    contract (:data:`CONTRACT`) granting float tolerance only on the
    agreement score, whose summation order differs.

    Epoch-window decay reuses :class:`MergePolicy` semantics
    (``epoch_window`` aging anchored at the fleet max epoch,
    ``max_epoch_skew`` clamping anchored at the fleet median), both
    evaluated lazily at snapshot time so the result is independent of
    arrival order.  State checkpoints round-trip through the artifact
    store (:meth:`save_checkpoint` / :meth:`restore`), and re-ingesting
    a path whose content is unchanged is a deduplicated no-op, so a
    restarted service resumes without re-ingesting.
    """

    def __init__(self, policy: Optional[MergePolicy] = None):
        self.policy = policy or MergePolicy()
        self._groups: Dict[Signature, _SigGroup] = {}
        #: raw epoch -> ingested run count (the clamp/window multiset)
        self._epoch_runs: Dict[int, int] = {}
        #: path -> content digest of successfully folded documents
        self._seen: Dict[str, str] = {}
        self.rejected: List[RejectedProfile] = []
        #: Documents folded into the live state.
        self.documents = 0
        #: Re-ingested (path, content) pairs skipped as no-ops.
        self.duplicates = 0
        self._reported_aged = 0

    # -- epoch arithmetic (lazy, order-invariant) --------------------

    def _ceiling(self) -> Optional[int]:
        """Current skew-clamp ceiling (median epoch + max skew)."""
        if self.policy.max_epoch_skew is None or not self._epoch_runs:
            return None
        total = sum(self._epoch_runs.values())
        target = (total - 1) // 2
        seen = 0
        for epoch in sorted(self._epoch_runs):
            seen += self._epoch_runs[epoch]
            if seen > target:
                return epoch + self.policy.max_epoch_skew
        raise AssertionError("unreachable: median of non-empty multiset")

    def _view(self) -> Tuple[Optional[int], int]:
        """(clamp ceiling, fleet max epoch) under the current multiset."""
        if not self._epoch_runs:
            return None, 0
        ceiling = self._ceiling()
        max_epoch = max(
            epoch if ceiling is None else min(epoch, ceiling)
            for epoch in self._epoch_runs
        )
        return ceiling, max_epoch

    def _alive_predicate(self):
        """Current epoch-window survival test for raw bucket epochs."""
        ceiling, max_epoch = self._view()
        window = self.policy.epoch_window

        def alive(epoch: int) -> bool:
            if window is None:
                return True
            effective = epoch if ceiling is None else min(epoch, ceiling)
            return effective >= max_epoch - window

        return alive

    # -- ingest ------------------------------------------------------

    def ingest_run(self, run: ClientRun) -> None:
        """Fold one validated client run into the live state."""
        self._epoch_runs[run.epoch] = self._epoch_runs.get(run.epoch, 0) + 1
        self.documents += 1
        threshold = self.policy.similarity.bias_threshold
        for record in sorted(run.records, key=lambda r: r.index):
            if not record.branches:
                continue
            signature = record_signature(record, threshold)
            group = self._groups.get(signature)
            if group is None:
                group = self._groups[signature] = _SigGroup()
                inc("service.agg.new_clusters")
            else:
                inc("service.agg.matched")
            group.fold(run, record)
            inc("service.agg.folded")

    def ingest_document(
        self, doc: ProfileDocument, path: str = ""
    ) -> None:
        """Fold one already-parsed document into the live state."""
        self.ingest_run(ClientRun.from_document(path, doc))

    def ingest_text(
        self, text: str, name: Optional[str] = None,
        parsed: Optional[Dict] = None,
    ) -> bool:
        """Validate and fold one document given as JSON text.

        The network ingest path (``POST /profiles`` feeds each NDJSON
        line here): corrupt documents are quarantined exactly like the
        batch ingest (typed, stage-labeled, counted after validation),
        and re-ingesting already-folded *content* is a deduplicated
        no-op.  The dedup ledger key is ``name`` when given (a file
        path — its content may legitimately change and re-fold) or the
        content digest itself (an anonymous upload — identical bytes
        can never double-count, which is what lets a restarted daemon
        receive replayed uploads safely).

        ``parsed`` lets a caller that already ran ``json.loads(text)``
        (the daemon's per-line tenant router peeks at
        ``meta.benchmark``) skip the second parse; it must be the
        loaded form of ``text`` exactly.  Dedup still hashes ``text``.
        """
        digest = hashlib.blake2b(text.encode(), digest_size=16).hexdigest()
        key = name or f"upload:{digest}"
        if self._seen.get(key) == digest:
            self.duplicates += 1
            inc("service.agg.duplicates")
            return False
        label = name or f"<upload:{digest[:12]}>"
        try:
            if isinstance(parsed, dict):
                doc = document_from_dict(parsed)
            else:
                doc = document_from_json(text)
            run = ClientRun.from_document(label, doc)
        except ProfileFormatError as exc:
            self.rejected.append(quarantine_profile(label, exc))
            return False
        except (TypeError, ValueError) as exc:
            wrapped = ProfileFormatError(
                f"unusable provenance stamp: {exc}", stage="provenance"
            )
            self.rejected.append(quarantine_profile(label, wrapped))
            return False
        self._seen[key] = digest
        self.ingest_run(run)
        return True

    def ingest_path(self, path: Union[str, Path]) -> bool:
        """Load, validate, and fold one document; False if skipped.

        Corrupt documents are quarantined exactly like the batch
        ingest (typed, stage-labeled, counted after validation); a
        path whose content was already folded is a deduplicated no-op,
        which is what lets a restored checkpoint re-scan its ingest
        directory without double-counting.
        """
        path = str(path)
        try:
            text = Path(path).read_text()
        except OSError as exc:
            self.rejected.append(quarantine_profile(path, exc))
            return False
        return self.ingest_text(text, name=path)

    def ingest_paths(self, paths: Iterable[Union[str, Path]]) -> int:
        """Ingest many paths (sorted for determinism); folded count."""
        return sum(
            1 for path in sorted(str(p) for p in paths)
            if self.ingest_path(path)
        )

    def ingest_view(self) -> IngestResult:
        """The batch-shaped view of this aggregator's rejections."""
        return IngestResult(runs=[], rejected=list(self.rejected))

    # -- snapshot ----------------------------------------------------

    def _merge_live(
        self, survivors: List[Tuple[int, _Bucket]]
    ) -> Dict:
        """Exact batch-merge arithmetic over surviving buckets."""
        # Sorted by (epoch, anchor) so the one float accumulation
        # below (the agreement sum) has an arrival-order-independent
        # term order; distinct signature groups can share an epoch.
        survivors = sorted(
            survivors, key=lambda pair: (pair[0], pair[1].anchor_key)
        )
        members = sum(bucket.members for _, bucket in survivors)
        run_ids = set()
        for _, bucket in survivors:
            run_ids.update(bucket.run_ids)
        weight_total = sum(bucket.weight_total for _, bucket in survivors)
        # Batch semantics: an all-zero-weight cluster degenerates to an
        # unweighted mean (weights = [1] * len(members)).
        degenerate = weight_total == 0

        by_address: Dict[int, List[int]] = {}
        for _, bucket in survivors:
            for address, entry in bucket.sums.items():
                acc = by_address.get(address)
                if acc is None:
                    by_address[address] = list(entry)
                else:
                    for i in range(6):
                        acc[i] += entry[i]

        quorum = max(1, int(round(self.policy.branch_quorum * members)))
        branches: Dict[int, BranchProfile] = {}
        for address in sorted(by_address):
            count, wsum, wexec, wtaken, esum, tsum = by_address[address]
            if count < quorum:
                continue
            if degenerate:
                executed = int(round(esum / count))
                taken = int(round(tsum / count))
            else:
                executed = int(round(wexec / wsum))
                taken = int(round(wtaken / wsum))
            branches[address] = BranchProfile(
                address, executed, min(taken, executed)
            )

        consensus_set = frozenset(branches)
        overlap_sum = 0.0
        for _, bucket in survivors:
            for member_set in sorted(bucket.address_sets,
                                     key=lambda s: tuple(sorted(s))):
                multiplicity = bucket.address_sets[member_set]
                if not member_set or not consensus_set:
                    overlap = (
                        1.0 if not member_set and not consensus_set else 0.0
                    )
                else:
                    overlap = 1.0 - max(
                        len(member_set - consensus_set) / len(member_set),
                        len(consensus_set - member_set) / len(consensus_set),
                    )
                overlap_sum += multiplicity * overlap

        ceiling = self._ceiling()
        effective = [
            epoch if ceiling is None else min(epoch, ceiling)
            for epoch, _ in survivors
        ]
        anchor_bucket = min(
            (bucket for _, bucket in survivors),
            key=lambda bucket: bucket.anchor_key,
        )
        return {
            "order_key": anchor_bucket.anchor_key,
            "detected_at": anchor_bucket.anchor_record.detected_at_branch,
            "branches": branches,
            "run_ids": sorted(run_ids),
            "detections": members,
            "agreement": overlap_sum / members,
            "first_epoch": min(effective),
            "last_epoch": max(effective),
        }

    def snapshot(self) -> FleetProfile:
        """Materialize the current merged fleet profile.

        The same structure :func:`merge_runs` computes from scratch —
        phases ordered by their least ``(run_id, record index)``
        member, counters from one integer division, provenance from
        surviving contributors only — in O(clusters x epochs x
        addresses), independent of how many documents were folded.
        """
        if not self.documents:
            raise ServiceError(
                "no usable client profiles to merge",
                hint="every ingested document was rejected (or none "
                     "arrived); see the rejection list",
            )
        ceiling, max_epoch = self._view()
        alive = self._alive_predicate()
        runs = aged_out = 0
        for epoch, count in self._epoch_runs.items():
            if alive(epoch):
                runs += count
            else:
                aged_out += count
        delta = aged_out - self._reported_aged
        if delta > 0:
            inc("service.agg.aged_out", delta)
            self._reported_aged = aged_out

        # Greedy section 3.1 clustering over one representative per
        # surviving signature, in first-occurrence order, against each
        # cluster's founding record — the batch walk, with all
        # same-signature records (which batch necessarily routes to
        # the same cluster) pre-collapsed into one step.
        views = [view for view in
                 (group.view(alive) for group in self._groups.values())
                 if view is not None]
        views.sort(key=lambda view: view[0])
        clusters: List[List] = []  # [founder record, survivor buckets]
        for _, record, survivors in views:
            for cluster in clusters:
                if same_hot_spot(record, cluster[0],
                                 self.policy.similarity):
                    cluster[1].extend(survivors)
                    break
            else:
                clusters.append([record, list(survivors)])

        merged = []
        for _, survivors in clusters:
            parts = self._merge_live(survivors)
            if len(parts["run_ids"]) < self.policy.min_runs:
                continue
            merged.append(parts)
        merged.sort(key=lambda parts: parts["order_key"])

        phases = []
        for index, parts in enumerate(merged):
            record = HotSpotRecord(
                index=index,
                detected_at_branch=parts["detected_at"],
                branches=parts["branches"],
            )
            phases.append(MergedPhase(
                index=index,
                record=record,
                provenance=PhaseProvenance(
                    run_ids=parts["run_ids"],
                    detections=parts["detections"],
                    agreement=parts["agreement"],
                    first_epoch=parts["first_epoch"],
                    last_epoch=parts["last_epoch"],
                    staleness=max_epoch - parts["last_epoch"],
                ),
            ))
        return FleetProfile(
            phases=phases,
            runs=runs,
            rejected=len(self.rejected),
            policy_fingerprint=self.policy.fingerprint(),
            max_epoch=max_epoch,
            aged_out=aged_out,
        )

    # -- checkpoint / restore ----------------------------------------

    def to_state(self) -> Dict:
        """JSON-able serialization of the complete live state."""
        groups = []
        for signature in sorted(
            self._groups, key=lambda sig: [[a, b or ""] for a, b in sig]
        ):
            group = self._groups[signature]
            buckets = {}
            for epoch in sorted(group.buckets):
                bucket = group.buckets[epoch]
                buckets[str(epoch)] = {
                    "members": bucket.members,
                    "zero_weight": bucket.zero_weight,
                    "weight_total": bucket.weight_total,
                    "run_ids": sorted(bucket.run_ids),
                    "sums": {
                        str(address): list(entry)
                        for address, entry in sorted(bucket.sums.items())
                    },
                    "address_sets": [
                        [sorted(addresses), count]
                        for addresses, count in sorted(
                            bucket.address_sets.items(),
                            key=lambda item: tuple(sorted(item[0])),
                        )
                    ],
                    "anchor": {
                        "run_id": bucket.anchor_key[0],
                        "index": bucket.anchor_key[1],
                        "record": record_to_entry(bucket.anchor_record),
                    },
                }
            groups.append({
                "sig": [[address, bias] for address, bias in signature],
                "buckets": buckets,
            })
        return {
            "version": AGGREGATOR_STATE_VERSION,
            "policy": self.policy.fingerprint(),
            "documents": self.documents,
            "duplicates": self.duplicates,
            "epoch_runs": {
                str(epoch): count
                for epoch, count in sorted(self._epoch_runs.items())
            },
            "seen": dict(sorted(self._seen.items())),
            "rejected": [
                {
                    "path": r.path, "error": r.error,
                    "exception_type": r.exception_type,
                    "hint": r.hint, "stage": r.stage,
                }
                for r in self.rejected
            ],
            "reported_aged": self._reported_aged,
            "groups": groups,
        }

    @classmethod
    def from_state(
        cls, state: Dict, policy: Optional[MergePolicy] = None
    ) -> "IncrementalAggregator":
        """Rebuild an aggregator from :meth:`to_state` output.

        Raises ``KeyError``/``TypeError``/``ValueError`` on any shape
        mismatch — :meth:`restore` turns those into a cold start.
        """
        if state["version"] != AGGREGATOR_STATE_VERSION:
            raise ValueError(
                f"stale aggregator state version {state['version']!r} "
                f"(want {AGGREGATOR_STATE_VERSION})"
            )
        agg = cls(policy)
        if state["policy"] != agg.policy.fingerprint():
            raise ValueError("checkpoint policy fingerprint mismatch")
        agg.documents = int(state["documents"])
        agg.duplicates = int(state.get("duplicates", 0))
        agg._reported_aged = int(state.get("reported_aged", 0))
        agg._epoch_runs = {
            int(epoch): int(count)
            for epoch, count in state["epoch_runs"].items()
        }
        agg._seen = dict(state["seen"])
        agg.rejected = [
            RejectedProfile(**entry) for entry in state["rejected"]
        ]
        for group_state in state["groups"]:
            signature = tuple(
                (int(address), bias if bias is None else str(bias))
                for address, bias in group_state["sig"]
            )
            group = _SigGroup()
            for epoch_text, entry in group_state["buckets"].items():
                bucket = _Bucket()
                bucket.members = int(entry["members"])
                bucket.zero_weight = int(entry["zero_weight"])
                bucket.weight_total = int(entry["weight_total"])
                bucket.run_ids = set(entry["run_ids"])
                bucket.sums = {
                    int(address): [int(v) for v in values]
                    for address, values in entry["sums"].items()
                }
                bucket.address_sets = {
                    frozenset(addresses): int(count)
                    for addresses, count in entry["address_sets"]
                }
                anchor = entry["anchor"]
                bucket.anchor_key = (anchor["run_id"], int(anchor["index"]))
                bucket.anchor_record = record_from_entry(anchor["record"])
                group.buckets[int(epoch_text)] = bucket
            agg._groups[signature] = group
        return agg

    def state_digest(self, state: Optional[Dict] = None) -> str:
        """Content hash guarding a checkpoint against tampering."""
        state = state if state is not None else self.to_state()
        return hashlib.blake2b(
            canonical_json(state), digest_size=20
        ).hexdigest()

    def save_checkpoint(
        self, store, tag: str, state: Optional[Dict] = None
    ) -> bool:
        """Persist the live state through the artifact store.

        ``state`` (a :meth:`to_state` document) lets a concurrent
        caller serialize under its own lock and keep only the disk
        write outside it — the aggregator itself has no locking.
        """
        if state is None:
            state = self.to_state()
        saved = store.put(checkpoint_key(tag, self.policy), {
            "kind": "aggregator-checkpoint",
            "agg_version": AGGREGATOR_STATE_VERSION,
            "state_digest": self.state_digest(state),
            "state": state,
        })
        if saved:
            inc("service.agg.checkpoint.saved")
        return saved

    @classmethod
    def restore(
        cls, store, tag: str, policy: Optional[MergePolicy] = None
    ) -> Optional["IncrementalAggregator"]:
        """Resume from a checkpoint; ``None`` means cold start.

        Every corruption path is a *miss*, never an error: a truncated
        entry fails the store's own stamp check, a stale
        ``agg_version`` or policy fingerprint is refused here, and a
        payload whose ``state_digest`` disagrees with its state is
        never trusted.
        """
        policy = policy or MergePolicy()
        payload = store.get(checkpoint_key(tag, policy))
        if payload is None:
            inc("service.agg.checkpoint.miss")
            return None
        try:
            if payload.get("agg_version") != AGGREGATOR_STATE_VERSION:
                raise ValueError(
                    f"stale checkpoint version "
                    f"{payload.get('agg_version')!r}"
                )
            state = payload["state"]
            expected = payload["state_digest"]
            actual = hashlib.blake2b(
                canonical_json(state), digest_size=20
            ).hexdigest()
            if expected != actual:
                raise ValueError("checkpoint state digest mismatch")
            aggregator = cls.from_state(state, policy)
        except (KeyError, TypeError, ValueError) as exc:
            inc("service.agg.checkpoint.corrupt")
            logger.warning(
                "aggregator checkpoint %r unusable (%s: %s); "
                "falling back to cold start", tag, type(exc).__name__, exc,
            )
            return None
        inc("service.agg.checkpoint.hit")
        return aggregator


def checkpoint_key(tag: str, policy: MergePolicy) -> str:
    """Stable artifact-store key of one aggregator's checkpoint slot.

    Unlike pack artifacts the checkpoint is a mutable *slot* (latest
    state wins), so the key hashes the identity — tag + merge policy +
    state schema version — not the content.
    """
    digest = hashlib.blake2b(digest_size=20)
    digest.update(f"agg-checkpoint-v{AGGREGATOR_STATE_VERSION};".encode())
    digest.update(f"tag={tag};".encode())
    digest.update(policy.fingerprint().encode())
    return digest.hexdigest()


def merge_stream(
    paths: Iterable[Union[str, Path]],
    policy: Optional[MergePolicy] = None,
    aggregator: Optional[IncrementalAggregator] = None,
) -> Tuple[IncrementalAggregator, FleetProfile]:
    """Streaming counterpart of ``merge_runs(ingest_paths(...))``."""
    aggregator = aggregator or IncrementalAggregator(policy)
    aggregator.ingest_paths(paths)
    return aggregator, aggregator.snapshot()


__all__ = [
    "AGGREGATOR_MODES",
    "AGGREGATOR_STATE_VERSION",
    "CONTRACT",
    "ClientRun",
    "ContractTolerance",
    "FleetProfile",
    "IncrementalAggregator",
    "IngestResult",
    "MergePolicy",
    "MergedPhase",
    "PhaseProvenance",
    "RejectedProfile",
    "checkpoint_key",
    "equivalence_diffs",
    "ingest_dir",
    "ingest_paths",
    "load_client_run",
    "merge_runs",
    "merge_stream",
    "profiles_equivalent",
    "record_signature",
    "quarantine_profile",
]
