"""The continuous re-optimization loop (ROADMAP item 3).

One controller run simulates a fleet living through ``epochs`` service
epochs of one deployed binary:

1. every epoch, a batch of simulated clients profiles the binary under
   fresh behavior seeds and ships v2 profile documents
   (:func:`~repro.service.clients.simulate_fleet`);
2. the controller *probes* the shipped artifact: it projects the
   artifact's selected-instruction set onto a run of the original
   program under the epoch's behavior
   (:func:`~repro.postlink.coverage.project_coverage`) — the honest
   "how much of today's execution do the packages cover?" number;
3. a :class:`~repro.service.drift.DriftDetector` watches the projected
   coverage decay against the artifact's provenance staleness (epoch
   stamps merged by :mod:`~repro.service.aggregate`);
4. when the detector fires, the controller re-aggregates the profiles
   of the last ``epoch_window`` epochs, re-packs them through the
   fault-tolerant farm (per-shard artifacts in the content-addressed
   store) and ships a fresh linked pack via
   :meth:`~repro.postlink.vacuum.VacuumPacker.pack_records` — the same
   persisted-profile seam as ``examples/offline_reoptimize.py``.

At the configured :class:`~repro.service.drift.DriftSpec` epoch the
fleet's behavior drifts (cold guards warm up), coverage decays, and
the report measures **time-to-recover**: how many epochs pass between
the drift event and a shipped artifact whose projected coverage is
back within ``recovery_tolerance`` of the pre-drift baseline.

Everything is deterministic in the config: client seeds, drift guard
selection, merge arithmetic, and farm payloads are all seeded or pure,
so two runs of the same config produce the same report (timings
aside).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from repro.errors import ServiceError
from repro.experiments.parallel import resolve_jobs
from repro.experiments.report import format_table
from repro.obs import annotate, inc, observe, span
from repro.postlink.coverage import project_coverage
from repro.regions.region import selected_origins
from repro.workloads.suite import load_benchmark

from .aggregate import (
    AGGREGATOR_MODES,
    IncrementalAggregator,
    MergePolicy,
    ingest_paths,
    merge_runs,
)
from .artifacts import ArtifactStore, default_store
from .clients import simulate_fleet
from .drift import DriftDetector, DriftSpec, apply_drift
from .farm import FarmConfig, FarmPolicy, pack_fleet
from .report import batched_engine_section

CONTROLLER_VERSION = 1


@dataclass(frozen=True)
class ControllerConfig:
    """One continuous re-optimization scenario."""

    benchmark: str
    input_name: str = "A"
    scale: Optional[float] = None
    #: Service epochs to simulate (epoch 0 ships the initial artifact).
    epochs: int = 6
    #: Client profiling runs per epoch.
    clients_per_epoch: int = 4
    #: Client ``i`` of epoch ``e`` runs behavior seed
    #: ``base_seed + e * clients_per_epoch + i``.
    base_seed: int = 0
    #: Epochs of profiles a re-aggregation looks back over (also the
    #: merge policy's epoch-window decay).
    epoch_window: int = 2
    #: Recovered when projected coverage is back within this relative
    #: tolerance of the pre-drift baseline.
    recovery_tolerance: float = 0.05
    #: Farm shard width for re-packs.
    shard_size: int = 1
    #: The injected drift event.
    drift: DriftSpec = field(default_factory=DriftSpec)
    #: Detector gates.
    decay_threshold: float = 0.1
    min_staleness: int = 1
    patience: int = 1
    #: Full pipeline document for the packer (``None`` = defaults).
    pipeline: Optional[Dict] = None
    #: Re-aggregation strategy: ``"batch"`` re-ingests the window's
    #: documents from disk on every re-pack; ``"streaming"`` folds each
    #: epoch's uploads into a live :class:`IncrementalAggregator` as
    #: they are written and snapshots it (same merged profile, under
    #: the determinism contract, without the per-re-pack re-ingest).
    aggregator: str = "batch"

    def __post_init__(self) -> None:
        if self.epochs < 2:
            raise ValueError("controller needs at least 2 epochs")
        if self.clients_per_epoch < 1:
            raise ValueError("clients_per_epoch must be >= 1")
        if not 1 <= self.drift.epoch < self.epochs:
            raise ValueError(
                f"drift epoch {self.drift.epoch} must fall inside the "
                f"run: 1 <= epoch < {self.epochs} (epoch 0 ships the "
                f"initial artifact)"
            )
        if self.epoch_window < 0:
            raise ValueError("epoch_window must be >= 0")
        if not 0 <= self.recovery_tolerance < 1:
            raise ValueError("recovery_tolerance must be in [0, 1)")
        if self.aggregator not in AGGREGATOR_MODES:
            raise ValueError(
                f"aggregator must be one of {AGGREGATOR_MODES}, "
                f"got {self.aggregator!r}"
            )

    def farm_config(self) -> FarmConfig:
        return FarmConfig(
            benchmark=self.benchmark,
            input_name=self.input_name,
            scale=self.scale,
            pipeline=self.pipeline,
            shard_size=self.shard_size,
        )

    def merge_policy(self) -> MergePolicy:
        return MergePolicy(epoch_window=self.epoch_window)

    def detector(self) -> DriftDetector:
        return DriftDetector(
            decay_threshold=self.decay_threshold,
            min_staleness=self.min_staleness,
            patience=self.patience,
        )

    def to_dict(self) -> Dict:
        return {
            "benchmark": f"{self.benchmark}/{self.input_name}",
            "scale": self.scale,
            "epochs": self.epochs,
            "clients_per_epoch": self.clients_per_epoch,
            "base_seed": self.base_seed,
            "epoch_window": self.epoch_window,
            "recovery_tolerance": self.recovery_tolerance,
            "shard_size": self.shard_size,
            "drift": self.drift.to_dict(),
            "aggregator": self.aggregator,
            "detector": {
                "decay_threshold": self.decay_threshold,
                "min_staleness": self.min_staleness,
                "patience": self.patience,
            },
        }


@dataclass
class _Shipped:
    """The artifact currently deployed to the fleet."""

    epoch: int
    fleet_max_epoch: int
    baseline: float
    selected: Set[int]
    phases: int
    packages: int


@dataclass
class ControllerReport:
    """Structured outcome of one controller run."""

    document: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return self.document

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.document, indent=indent, sort_keys=True)

    @property
    def recovered(self) -> bool:
        return bool(self.document["recovery"]["recovered"])

    @property
    def time_to_recover(self) -> Optional[int]:
        return self.document["recovery"]["time_to_recover_epochs"]

    def render(self) -> str:
        rows = []
        for row in self.document["epochs"]:
            rows.append([
                row["epoch"],
                "drift" if row["drifted"] else "",
                row["action"],
                f"{row['probe_coverage']:.3f}",
                f"{row['coverage']:.3f}",
                f"{row['decay']:.3f}",
                row["staleness"],
                row["phases"] if row["phases"] is not None else "",
                f"{row['seconds']:.2f}s",
            ])
        table = format_table(
            ["epoch", "behavior", "action", "probe", "serving", "decay",
             "staleness", "phases", "wall"],
            rows,
            title=f"continuous re-optimization — "
                  f"{self.document['benchmark']}",
        )
        recovery = self.document["recovery"]
        lines = [table, ""]
        lines.append(
            f"drift at epoch {recovery['drift_epoch']}, detected at "
            f"{recovery['detected_epoch']}, re-packed at "
            f"{recovery['repack_epochs']}"
        )
        if recovery["recovered"]:
            lines.append(
                f"recovered in {recovery['time_to_recover_epochs']} "
                f"epoch(s): coverage "
                f"{recovery['pre_drift_coverage']:.3f} -> "
                f"{recovery['drifted_coverage']:.3f} -> "
                f"{recovery['post_recovery_coverage']:.3f} "
                f"(repack wall {recovery['repack_seconds']:.2f}s)"
            )
        else:
            lines.append("NOT RECOVERED within the simulated epochs")
        return "\n".join(lines)


def _epoch_paths(work: Path, first: int, last: int) -> List[Path]:
    """All profile documents of epochs ``first..last`` inclusive."""
    paths: List[Path] = []
    for epoch in range(max(0, first), last + 1):
        paths.extend(sorted((work / f"epoch-{epoch:03d}").glob("*.json")))
    return paths


def run_controller(
    config: ControllerConfig,
    work_dir: Union[str, Path],
    jobs: Optional[int] = None,
    store: Optional[ArtifactStore] = None,
    policy: Optional[FarmPolicy] = None,
    verbose: bool = False,
) -> ControllerReport:
    """Simulate the closed profile → pack → drift → re-pack loop."""
    work = Path(work_dir)
    work.mkdir(parents=True, exist_ok=True)
    store = store or default_store()
    policy = policy or FarmPolicy()
    farm_config = config.farm_config()
    merge_policy = config.merge_policy()
    packer = farm_config.pipeline_config().packer()
    detector = config.detector()

    canonical = load_benchmark(
        config.benchmark, config.input_name, scale=config.scale
    )
    pristine = canonical.behavior.bias_snapshot()
    streaming = (
        IncrementalAggregator(merge_policy)
        if config.aggregator == "streaming" else None
    )

    shipped: Optional[_Shipped] = None
    epoch_rows: List[Dict] = []
    events: List[Dict] = []
    detected_epoch: Optional[int] = None
    recovered_epoch: Optional[int] = None
    repack_epochs: List[int] = []
    repack_seconds = 0.0
    pre_drift_coverage: Optional[float] = None
    drifted_coverage: Optional[float] = None
    warmed = 0
    farm_totals = {"cached": 0, "packed": 0, "degraded": 0}

    def emit(message: str) -> None:
        if verbose:
            print(f"[controller] {message}")

    def aggregate_and_ship(epoch: int):
        """Merge the window's profiles, pack through the farm, ship."""
        nonlocal repack_seconds
        started = time.perf_counter()
        if streaming is not None:
            # The live state already holds every upload; the policy's
            # epoch window ages the out-of-window epochs at snapshot
            # time, matching the batch path's window-limited re-ingest.
            fleet = streaming.snapshot()
        else:
            paths = _epoch_paths(work, epoch - config.epoch_window, epoch)
            ingest = ingest_paths(paths)
            fleet = merge_runs(ingest, merge_policy)
        packed = pack_fleet(
            fleet, farm_config, jobs=jobs, store=store, policy=policy
        )
        farm_totals["cached"] += packed.cached_shards
        farm_totals["packed"] += packed.packed_shards
        farm_totals["degraded"] += packed.degraded_shards
        # The linked ship pack: the merged consensus records through
        # the persisted-profile seam, against the canonical binary.
        result = packer.pack_records(canonical, fleet.records)
        selected = set(selected_origins(result.regions))
        baseline = project_coverage(canonical, selected).package_fraction
        seconds = time.perf_counter() - started
        repack_seconds += seconds if shipped is not None else 0.0
        observe("controller.ship.seconds", seconds)
        return _Shipped(
            epoch=epoch,
            fleet_max_epoch=fleet.max_epoch,
            baseline=baseline,
            selected=selected,
            phases=len(fleet.phases),
            packages=len(result.packages),
        ), seconds

    for epoch in range(config.epochs):
        epoch_started = time.perf_counter()
        drifted = epoch >= config.drift.epoch
        with span("controller.epoch", epoch=epoch) as entry:
            inc("controller.epochs")
            # This epoch's fleet behavior, on the one canonical
            # workload instance (rebuilding would re-allocate uids and
            # invalidate the shipped selection set).
            canonical.behavior.restore_biases(pristine)
            if drifted:
                count = apply_drift(canonical.behavior, config.drift)
                if epoch == config.drift.epoch:
                    warmed = count
                    events.append({
                        "epoch": epoch, "kind": "drift",
                        "detail": f"warmed {count} cold branch(es) at "
                                  f"severity {config.drift.severity}",
                    })
                    emit(f"epoch {epoch}: drift event — {count} cold "
                         f"branch(es) warmed")
            canonical.behavior.seed = (
                config.base_seed + epoch * config.clients_per_epoch
            )

            # Clients profile under the same (possibly drifted)
            # behavior; their rebuilt workloads drift identically
            # because guard selection is structural (uid order).
            mutate = None
            if drifted:
                drift_spec = config.drift
                mutate = lambda w, i: apply_drift(w.behavior, drift_spec)
            simulate_fleet(
                config.benchmark,
                config.input_name,
                runs=config.clients_per_epoch,
                out_dir=work / f"epoch-{epoch:03d}",
                base_seed=config.base_seed + epoch * config.clients_per_epoch,
                epochs=1,
                scale=config.scale,
                epoch_offset=epoch,
                run_prefix=f"e{epoch:03d}c",
                mutate=mutate,
                aggregator=streaming,
            )

            if shipped is None:
                shipped, seconds = aggregate_and_ship(epoch)
                pre_drift_coverage = shipped.baseline
                action = "ship"
                coverage = shipped.baseline
                probe = coverage
                decay = 0.0
                staleness = 0
                phases: Optional[int] = shipped.phases
                events.append({
                    "epoch": epoch, "kind": "ship",
                    "detail": f"initial artifact: {shipped.phases} "
                              f"phase(s), coverage {coverage:.3f}",
                })
                emit(f"epoch {epoch}: shipped initial artifact "
                     f"(coverage {coverage:.3f})")
            else:
                probe = project_coverage(
                    canonical, shipped.selected
                ).package_fraction
                coverage = probe
                decay = max(
                    0.0,
                    1.0 - probe / shipped.baseline
                    if shipped.baseline else 0.0,
                )
                staleness = epoch - shipped.fleet_max_epoch
                action = "observe"
                phases = None
                if detector.observe(decay, staleness):
                    if detected_epoch is None:
                        detected_epoch = epoch
                        events.append({
                            "epoch": epoch, "kind": "detect",
                            "detail": f"decay {decay:.3f} >= "
                                      f"{config.decay_threshold} at "
                                      f"staleness {staleness}",
                        })
                    emit(f"epoch {epoch}: decay {decay:.3f} at "
                         f"staleness {staleness} — re-packing")
                    shipped, seconds = aggregate_and_ship(epoch)
                    detector.reset()
                    inc("controller.repacks")
                    repack_epochs.append(epoch)
                    action = "repack"
                    coverage = shipped.baseline
                    phases = shipped.phases
                    events.append({
                        "epoch": epoch, "kind": "repack",
                        "detail": f"re-aggregated epochs "
                                  f"{max(0, epoch - config.epoch_window)}"
                                  f"..{epoch}, coverage back to "
                                  f"{coverage:.3f} in {seconds:.2f}s",
                    })
                if not drifted:
                    pre_drift_coverage = coverage

            if drifted:
                # Track the worst *probe* reading: how far the fleet
                # actually fell before (or between) re-packs.
                drifted_coverage = (
                    probe if drifted_coverage is None
                    else min(drifted_coverage, probe)
                )
                target = (pre_drift_coverage or 0.0) * (
                    1.0 - config.recovery_tolerance
                )
                if recovered_epoch is None and coverage >= target:
                    recovered_epoch = epoch
                    observe(
                        "controller.recovery.epochs",
                        epoch - config.drift.epoch,
                    )
                    events.append({
                        "epoch": epoch, "kind": "recover",
                        "detail": f"coverage {coverage:.3f} within "
                                  f"{config.recovery_tolerance:.0%} of "
                                  f"pre-drift "
                                  f"{pre_drift_coverage:.3f}",
                    })
                    emit(f"epoch {epoch}: recovered "
                         f"(coverage {coverage:.3f})")
            annotate(entry, coverage=round(coverage, 6),
                     staleness=staleness)

        epoch_rows.append({
            "epoch": epoch,
            "drifted": drifted,
            "action": action,
            "clients": config.clients_per_epoch,
            #: What the deployed artifact covered when probed this
            #: epoch (before any re-pack)...
            "probe_coverage": round(probe, 6),
            #: ...and what the artifact serving at epoch end covers.
            "coverage": round(coverage, 6),
            "decay": round(decay, 6),
            "staleness": staleness,
            "strikes": detector.strikes,
            "phases": phases,
            "warmed": warmed if drifted else 0,
            "seconds": round(time.perf_counter() - epoch_started, 6),
        })

    recovery = {
        "drift_epoch": config.drift.epoch,
        "warmed_branches": warmed,
        "detected_epoch": detected_epoch,
        "repack_epochs": repack_epochs,
        "recovered_epoch": recovered_epoch,
        "time_to_recover_epochs": (
            recovered_epoch - config.drift.epoch
            if recovered_epoch is not None else None
        ),
        "pre_drift_coverage": round(pre_drift_coverage or 0.0, 6),
        "drifted_coverage": (
            round(drifted_coverage, 6) if drifted_coverage is not None
            else None
        ),
        "post_recovery_coverage": (
            round(epoch_rows[-1]["coverage"], 6)
            if recovered_epoch is not None else None
        ),
        "repack_seconds": round(repack_seconds, 6),
        "recovered": recovered_epoch is not None,
    }
    document = {
        "controller_version": CONTROLLER_VERSION,
        "benchmark": f"{config.benchmark}/{config.input_name}",
        "scale": config.scale,
        "jobs": resolve_jobs(jobs),
        "aggregator": config.aggregator,
        "config": config.to_dict(),
        "epochs": epoch_rows,
        "events": events,
        "recovery": recovery,
        "farm": {
            "cached_shards": farm_totals["cached"],
            "packed_shards": farm_totals["packed"],
            "degraded_shards": farm_totals["degraded"],
            "store_root": store.root if store.enabled else "off",
        },
        "engine": {"batched": batched_engine_section()},
    }
    if not recovery["recovered"]:
        raise_hint = (
            "coverage never returned to within "
            f"{config.recovery_tolerance:.0%} of the pre-drift baseline"
        )
        events.append({
            "epoch": config.epochs - 1, "kind": "unrecovered",
            "detail": raise_hint,
        })
    return ControllerReport(document=document)


__all__ = [
    "CONTROLLER_VERSION",
    "ControllerConfig",
    "ControllerReport",
    "run_controller",
]
