"""The JSON fleet report: one document per ``repro serve`` request.

Everything an operator needs to audit a fleet packing pass: how many
client profiles were ingested and why any were rejected, what the
merge produced (phases, contributors, agreement, staleness), how the
packing farm fared (per-shard timings, artifact cache hit rate), and
the packed totals.  The phase/package content of the report is
deterministic for a given profile set; only the ``timings`` differ
between invocations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .aggregate import FleetProfile, IngestResult
from .artifacts import ArtifactStore
from .farm import FarmConfig, FleetPackResult

#: v2: ingest carries the quarantined count, shards carry their retry
#: attempts and degraded flag, and the pack section summarizes farm
#: fault handling.
REPORT_VERSION = 2


@dataclass
class FleetReport:
    """Structured outcome of one ingest → merge → pack request."""

    document: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return self.document

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.document, indent=indent, sort_keys=True)

    @property
    def phase_set(self) -> List[int]:
        return list(self.document["pack"]["phase_set"])

    @property
    def hit_rate(self) -> float:
        return float(self.document["pack"]["cache"]["hit_rate"])

    @property
    def degraded_shards(self) -> int:
        return int(self.document["pack"]["faults"]["degraded_shards"])

    @property
    def quarantined_ingests(self) -> int:
        return int(self.document["ingest"]["quarantined"])


def batched_engine_section() -> Dict[str, int]:
    """Batched-engine counter totals (summed across kernel labels).

    ``{"rows": ..., "retired_rows": ..., "steps": ...}`` from this
    process's metrics registry — all zero for a request served purely
    from on-disk profiles, live counts when the fleet was simulated in
    lockstep (``repro ingest``/``drift``).  Deterministic for a given
    request: row/step counts are part of the engine's bit-identity
    contract, unlike wall-clock timings.
    """
    from repro.obs import default_registry
    from repro.obs.metrics import series_name

    snapshot = default_registry().snapshot()
    totals = {"rows": 0, "retired_rows": 0, "steps": 0}
    for key, value in snapshot.get("counters", {}).items():
        name = series_name(key)
        if name.startswith("engine.batched."):
            field_name = name[len("engine.batched."):]
            if field_name in totals:
                totals[field_name] += int(value)
    return totals


def build_report(
    ingest: IngestResult,
    fleet: FleetProfile,
    packed: FleetPackResult,
    config: FarmConfig,
    store: ArtifactStore,
    jobs: int,
    aggregate: Optional[Dict] = None,
) -> FleetReport:
    """Assemble the fleet report document.

    ``aggregate`` (optional) is the streaming-aggregator section —
    mode, live-state document counts, checkpoint disposition — added
    verbatim under ``document["aggregate"]`` when the request was
    served by an :class:`~repro.service.aggregate.IncrementalAggregator`
    instead of a from-scratch batch merge.
    """
    shards = [
        {
            "shard": outcome.shard,
            "phases": outcome.phases,
            "key": outcome.key,
            "cached": outcome.cached,
            "seconds": round(outcome.seconds, 6),
            "attempts": outcome.attempts,
            "degraded": outcome.degraded,
            "packages": len(outcome.payload["packages"]),
            "unique_selected": outcome.payload.get("unique_selected"),
            "coverage": outcome.payload["coverage"]["package_fraction"],
            "diagnostics": outcome.payload["diagnostics"],
        }
        for outcome in packed.outcomes
    ]
    document = {
        "report_version": REPORT_VERSION,
        "benchmark": f"{config.benchmark}/{config.input_name}",
        "scale": config.scale,
        "jobs": jobs,
        "ingest": {
            "runs": fleet.runs,
            "quarantined": len(ingest.rejected),
            "rejected": [r.render() for r in ingest.rejected],
        },
        "merge": {
            "phases_merged": len(fleet.phases),
            "max_epoch": fleet.max_epoch,
            "aged_out": fleet.aged_out,
            "policy": fleet.policy_fingerprint,
            "profile_digest": fleet.digest(),
            "phases": [
                {
                    "index": phase.index,
                    "branches": len(phase.record.branches),
                    **phase.provenance.to_dict(),
                }
                for phase in fleet.phases
            ],
        },
        "pack": {
            "config": config.fingerprint(),
            "shard_size": max(1, config.shard_size),
            "shards": shards,
            "phase_set": packed.phase_set(),
            "packages": packed.total_packages,
            "cache": {
                "cached_shards": packed.cached_shards,
                "packed_shards": packed.packed_shards,
                "hit_rate": round(packed.hit_rate, 6),
                "store_root": store.root if store.enabled else "off",
            },
            "faults": {
                "degraded_shards": packed.degraded_shards,
                "retried_shards": packed.retried_shards,
            },
        },
        "engine": {"batched": batched_engine_section()},
    }
    if aggregate is not None:
        document["aggregate"] = aggregate
    return FleetReport(document=document)


__all__ = [
    "FleetReport",
    "REPORT_VERSION",
    "batched_engine_section",
    "build_report",
]
