"""Workload bundles: a program plus everything needed to run it.

A :class:`Workload` carries the program, its behavioral branch model,
the ground-truth phase script, and the run budget.  The Vacuum Packing
pipeline and all experiments consume workloads; the suite in
:mod:`repro.workloads.suite` produces one per Table 1 benchmark input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.behavior import BehaviorModel
from repro.engine.compiled import CompiledExecutor, compiled_enabled
from repro.engine.executor import (
    BlockExecutor,
    ExecutionLimits,
    ExecutionSummary,
)
from repro.engine.phases import PhaseScript
from repro.program.program import Program


@dataclass
class Workload:
    """A runnable benchmark: program + behavior + phases + budget."""

    name: str
    program: Program
    behavior: BehaviorModel
    phase_script: PhaseScript
    limits: ExecutionLimits
    #: Free-form description (e.g. the Table 1 input name).
    description: str = ""
    meta: dict = field(default_factory=dict)

    def executor(
        self,
        program: Optional[Program] = None,
        branch_hooks=(),
        block_hook=None,
    ) -> BlockExecutor:
        """An executor for this workload (optionally over a packed
        variant of the program — the phase script and behavior carry
        over unchanged because both are keyed by origin uids and
        branch counts)."""
        return BlockExecutor(
            program or self.program,
            self.behavior,
            self.phase_script,
            branch_hooks=branch_hooks,
            block_hook=block_hook,
            limits=self.limits,
        )

    def run(self, program: Optional[Program] = None, **kwargs) -> ExecutionSummary:
        """Run to the budget; equivalent under either engine.

        Uses the compiled trace engine (``REPRO_ENGINE=compiled``, the
        default) unless a ``block_hook`` is requested — block-level
        callbacks (the timing model) need the reference interpreter.
        """
        if kwargs.get("block_hook") is None and compiled_enabled():
            kwargs.pop("block_hook", None)
            return CompiledExecutor(
                program or self.program,
                self.behavior,
                self.phase_script,
                limits=self.limits,
                **kwargs,
            ).run()
        return self.executor(program, **kwargs).run()
