"""Synthetic phase-structured workload generator.

Builds programs whose *control-flow behaviour* mimics the paper's
Table 1 benchmarks (see DESIGN.md, "Substitutions"): a dispatch loop
(or per-phase driver functions) routes execution into *work functions*,
each an inner loop of ILP-bearing basic blocks with data-dependent
diamonds, optional callee chains, optional recursion, and guarded
never-taken calls into a large body of cold filler code.  Each phase
activates a subset of the work functions and re-biases the shared
diamonds, which is exactly the structure the Hot Spot Detector must
rediscover.

Everything is derived deterministically from ``spec.seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.behavior import BehaviorModel
from repro.engine.executor import ExecutionLimits
from repro.engine.phases import PhaseScript
from repro.isa.instructions import Instruction
from repro.isa.registers import R, Reg
from repro.program.builder import BlockBuilder, FunctionBuilder, ProgramBuilder
from repro.program.program import Program

from .base import Workload

#: Registers the generator may use freely (clear of the calling
#: convention's argument/stack/return-address registers).
_POOL = [R(i) for i in range(10, 32)]
_BASE_PTR = R(58)
_SCRATCH = R(59)

#: Detection needs roughly hdc_max/2 candidate-dominated branches after
#: BBB warmup; phases shorter than this are invisible to the HSD.
MIN_PHASE_BRANCHES = 45_000


@dataclass
class SyntheticSpec:
    """Shape parameters of one synthetic benchmark."""

    name: str
    seed: int
    phases: int = 2
    #: "sequence" (1 2 3), "repeat" (1 2 1 2), or "return" (1 2 3 1)
    phase_pattern: str = "sequence"
    work_functions: int = 6
    functions_per_phase: int = 2
    #: fraction of each phase's active functions drawn from a shared pool
    shared_fraction: float = 0.5
    #: all phases dispatch from one root loop (perl/li/m88ksim style)
    shared_root: bool = True
    diamonds_per_function: int = 3
    block_size: int = 5
    call_depth: int = 1
    #: statically present, dynamically dead code: most of a real
    #: binary's text is cold, which is what makes Table 3's "% static
    #: instructions selected" small
    cold_functions: int = 110
    cold_blocks_per_function: int = 14
    #: fraction of shared diamonds whose bias swings hard across phases
    #: (the paper's Multi High / Multi Low populations are small but
    #: "allow the optimizer to wisely choose paths")
    swing_fraction: float = 0.10
    low_swing_fraction: float = 0.15
    #: inner-loop back-edge bias (~20 iterations): inner diamonds then
    #: execute often enough per detection window to saturate their BBB
    #: counters, so only genuinely rare directions classify cold
    trip_bias: float = 0.95
    #: dispatch loops return to their caller every ~1/(1-bias)
    #: iterations (real programs process one input unit per call);
    #: stranded post-exit execution therefore re-launches at the next
    #: call's prologue launch point
    #: chosen so the thin driver main's own branches stay below the
    #: BBB candidate threshold within a refresh window (main is cold,
    #: dispatchers are the region roots with per-call launch points),
    #: while each dispatch call is short enough to bound strands
    dispatch_bias: float = 0.97
    #: the thin driver main effectively never exits on its own; the
    #: run is bounded by the branch budget (the paper's runs end with
    #: the input, ours with the scaled budget)
    outer_bias: float = 1.0
    recursion: bool = False
    #: dynamic branch budget for the whole run
    branch_budget: int = 400_000
    #: relative phase lengths (defaults to equal)
    phase_weights: Optional[Sequence[float]] = None

    def name_slug(self) -> str:
        """Identifier-safe version of the benchmark name."""
        return (
            self.name.replace(".", "_").replace("-", "_").replace(" ", "_").lower()
        )


@dataclass
class _GenState:
    rng: random.Random
    behavior: BehaviorModel
    program_builder: ProgramBuilder = field(default_factory=ProgramBuilder)
    cold_names: List[str] = field(default_factory=list)


def _emit_alu_body(bb: BlockBuilder, rng: random.Random, size: int) -> None:
    """Straight-line filler with a mix of chains and independent ops."""
    regs = rng.sample(_POOL, min(6, len(_POOL)))
    for i in range(size):
        choice = rng.random()
        d = regs[i % len(regs)]
        a = regs[(i + 1) % len(regs)]
        b = regs[(i + 2) % len(regs)]
        if choice < 0.45:
            bb.add(d, a, b)
        elif choice < 0.6:
            bb.addi(d, a, rng.randrange(1, 64))
        elif choice < 0.7:
            bb.mul(d, a, b)
        elif choice < 0.8:
            bb.xor(d, a, b)
        elif choice < 0.9:
            bb.load(d, _BASE_PTR, 8 * rng.randrange(0, 64))
        else:
            bb.store(a, _BASE_PTR, 8 * rng.randrange(0, 64))


def _phase_biases(
    state: _GenState,
    active_phases: Sequence[int],
    all_phases: Sequence[int],
    swing: str,
) -> Dict[int, float]:
    """Per-phase taken probability for one diamond branch.

    ``swing`` selects the Figure 9 category the branch should land in:
    "high" (>70 % swing between phases), "low" (40-70 %), "same"
    (biased, stable), or "none" (never biased).
    """
    rng = state.rng
    biases: Dict[int, float] = {}
    if swing == "high":
        low, high = rng.uniform(0.04, 0.12), rng.uniform(0.88, 0.96)
        flip = rng.random() < 0.5
        for i, phase in enumerate(all_phases):
            side = (i % 2 == 0) != flip
            biases[phase] = high if side else low
    elif swing == "low":
        low, high = rng.uniform(0.15, 0.3), rng.uniform(0.6, 0.8)
        flip = rng.random() < 0.5
        for i, phase in enumerate(all_phases):
            side = (i % 2 == 0) != flip
            biases[phase] = high if side else low
    elif swing == "none":
        for phase in all_phases:
            biases[phase] = rng.uniform(0.42, 0.58)
    else:  # "same": stable bias; a few sides are genuinely cold
        if rng.random() < 0.08:
            # Below the HSD's hot-arc threshold even at counter
            # saturation: this side becomes a (rare) package exit —
            # the paper's "infrequently traversed" region exits.
            value = rng.uniform(0.001, 0.005)
        else:
            value = rng.uniform(0.05, 0.16)
        if rng.random() < 0.5:
            value = 1.0 - value
        for phase in all_phases:
            jittered = value + rng.uniform(-0.003, 0.003)
            biases[phase] = min(0.999, max(0.001, jittered))
    return biases


def _build_cold_function(state: _GenState, name: str, blocks: int) -> None:
    fb = FunctionBuilder(name)
    for i in range(blocks - 1):
        bb = fb.block(f"{name}_c{i}")
        _emit_alu_body(bb, state.rng, 4)
        if i % 3 == 2:
            bb.sne(_SCRATCH, _POOL[0], _POOL[1])
            bb.brnz(_SCRATCH, f"{name}_c{state.rng.randrange(max(i - 2, 0), i + 1)}")
    tail = fb.block(f"{name}_ret")
    tail.ret()
    state.program_builder.add(fb.build())


def _build_work_function(
    state: _GenState,
    spec: SyntheticSpec,
    name: str,
    active_phases: Sequence[int],
    all_phases: Sequence[int],
    shared: bool,
    callee: Optional[str],
    cold_callee: Optional[str],
) -> None:
    """One hot work function: an inner loop over diamond blocks."""
    rng = state.rng
    fb = FunctionBuilder(name)

    prologue = fb.block(f"{name}_pro")
    prologue.movi(_BASE_PTR, 0x4000)
    _emit_alu_body(prologue, rng, 2)

    head = fb.block(f"{name}_head")
    _emit_alu_body(head, rng, spec.block_size)

    merge_target = None
    for d in range(spec.diamonds_per_function):
        cond_label = f"{name}_d{d}"
        then_label = f"{name}_d{d}_t"
        else_label = f"{name}_d{d}_e"
        merge_label = f"{name}_d{d}_m"

        cond = fb.block(cond_label)
        _emit_alu_body(cond, rng, max(spec.block_size - 2, 1))
        cond.sne(_SCRATCH, _POOL[d % len(_POOL)], _POOL[(d + 3) % len(_POOL)])
        branch = cond.brnz(_SCRATCH, else_label)

        if shared:
            roll = rng.random()
            if roll < spec.swing_fraction:
                swing = "high"
            elif roll < spec.swing_fraction + spec.low_swing_fraction:
                swing = "low"
            elif roll < spec.swing_fraction + spec.low_swing_fraction + 0.2:
                swing = "none"
            else:
                swing = "same"
            biases = _phase_biases(state, active_phases, all_phases, swing)
        else:
            swing = rng.choice(["same", "same", "same", "none"])
            biases = _phase_biases(state, active_phases, active_phases, swing)
        state.behavior.set_phase_biases(branch.uid, biases)

        then_block = fb.block(then_label)
        _emit_alu_body(then_block, rng, spec.block_size)
        then_block.jump(merge_label)

        else_block = fb.block(else_label)
        _emit_alu_body(else_block, rng, spec.block_size)

        merge = fb.block(merge_label)
        _emit_alu_body(merge, rng, 2)
        merge_target = merge_label

    if callee is not None:
        call_block = fb.block(f"{name}_call")
        call_block.call(callee)

    if cold_callee is not None:
        guard = fb.block(f"{name}_guard")
        guard.seq(_SCRATCH, _POOL[0], _POOL[1])
        cold_branch = guard.brnz(_SCRATCH, f"{name}_cold")
        state.behavior.set_bias(cold_branch.uid, 0.0)  # never taken

    latch = fb.block(f"{name}_latch")
    _emit_alu_body(latch, rng, 2)
    latch.slt(_SCRATCH, _POOL[2], _POOL[5])
    latch_branch = latch.brnz(_SCRATCH, f"{name}_head")
    state.behavior.set_bias(latch_branch.uid, spec.trip_bias)

    epilogue = fb.block(f"{name}_ret")
    epilogue.ret()

    if cold_callee is not None:
        cold_block = fb.block(f"{name}_cold")
        cold_block.call(cold_callee)
        cold_back = fb.block(f"{name}_cold_back")
        cold_back.jump(f"{name}_latch")

    state.program_builder.add(fb.build())


def _build_helper_chain(
    state: _GenState, spec: SyntheticSpec, base_name: str, depth: int
) -> Optional[str]:
    """A chain of small callee functions under one work function."""
    if depth <= 0:
        return None
    previous: Optional[str] = None
    for level in range(depth, 0, -1):
        name = f"{base_name}_h{level}"
        fb = FunctionBuilder(name)
        body = fb.block(f"{name}_b0")
        _emit_alu_body(body, state.rng, spec.block_size)
        body.sne(_SCRATCH, _POOL[3], _POOL[7])
        branch = body.brnz(_SCRATCH, f"{name}_alt")
        state.behavior.set_bias(branch.uid, state.rng.uniform(0.1, 0.3))
        main_path = fb.block(f"{name}_main")
        _emit_alu_body(main_path, state.rng, spec.block_size)
        if previous is not None:
            call = fb.block(f"{name}_call")
            call.call(previous)
        tail = fb.block(f"{name}_ret")
        tail.ret()
        alt = fb.block(f"{name}_alt")
        _emit_alu_body(alt, state.rng, 2)
        alt.jump(f"{name}_ret")
        state.program_builder.add(fb.build())
        previous = name
    return previous


def _build_recursive_function(state: _GenState, spec: SyntheticSpec, name: str) -> str:
    """A self-recursive hot function (li/parser style)."""
    fb = FunctionBuilder(name)
    body = fb.block(f"{name}_b0")
    _emit_alu_body(body, state.rng, spec.block_size)
    body.slt(_SCRATCH, _POOL[1], _POOL[4])
    branch = body.brnz(_SCRATCH, f"{name}_base")
    # ~0.4 stop probability per level: expected recursion depth ~2.5.
    state.behavior.set_bias(branch.uid, 0.4)
    recurse = fb.block(f"{name}_rec")
    _emit_alu_body(recurse, state.rng, 2)
    recurse.call(name)
    after = fb.block(f"{name}_after")
    _emit_alu_body(after, state.rng, 2)
    after.ret()
    base = fb.block(f"{name}_base")
    _emit_alu_body(base, state.rng, 2)
    base.ret()
    state.program_builder.add(fb.build())
    return name


def _build_dispatcher(
    state: _GenState,
    spec: SyntheticSpec,
    name: str,
    targets: Sequence[str],
    activity: Dict[str, List[int]],
    all_phases: Sequence[int],
    outer_bias: float,
    is_entry: bool,
    cold_callee: Optional[str] = None,
) -> None:
    """A selector loop that calls one active target per iteration.

    Selector branch ``i`` takes (calls its target) with probability
    1/(number of active targets remaining in this phase), so each
    iteration picks uniformly among the phase's active targets.
    """
    rng = state.rng
    fb = FunctionBuilder(name)
    entry = fb.block(f"{name}_entry")
    entry.movi(_BASE_PTR, 0x8000)
    _emit_alu_body(entry, rng, 2)

    head = fb.block(f"{name}_head")
    _emit_alu_body(head, rng, 3)

    # Selector chain.
    for i, target in enumerate(targets):
        sel = fb.block(f"{name}_sel{i}")
        sel.sne(_SCRATCH, _POOL[i % len(_POOL)], _POOL[(i + 5) % len(_POOL)])
        branch = sel.brnz(_SCRATCH, f"{name}_do{i}")
        biases: Dict[int, float] = {}
        for phase in all_phases:
            remaining = [
                t for t in targets[i:] if phase in activity.get(t, [])
            ]
            if phase in activity.get(target, []):
                biases[phase] = 1.0 / len(remaining)
            else:
                biases[phase] = 0.0
        state.behavior.set_phase_biases(branch.uid, biases)

    none_active = fb.block(f"{name}_none")
    _emit_alu_body(none_active, rng, 1)
    none_active.jump(f"{name}_latch")

    for i, target in enumerate(targets):
        do_block = fb.block(f"{name}_do{i}")
        do_block.call(target)
        back = fb.block(f"{name}_back{i}")
        back.jump(f"{name}_latch")

    latch = fb.block(f"{name}_latch")
    _emit_alu_body(latch, rng, 2)
    latch.slt(_SCRATCH, _POOL[6], _POOL[9])
    latch_branch = latch.brnz(_SCRATCH, f"{name}_head")
    state.behavior.set_bias(latch_branch.uid, outer_bias)

    if cold_callee is not None:
        cold_guard = fb.block(f"{name}_cold_guard")
        cold_guard.seq(_SCRATCH, _POOL[0], _POOL[2])
        cold_branch = cold_guard.brnz(_SCRATCH, f"{name}_colddo")
        state.behavior.set_bias(cold_branch.uid, 0.0)

    tail = fb.block(f"{name}_tail")
    if is_entry:
        tail.halt()
    else:
        tail.ret()

    if cold_callee is not None:
        cold_do = fb.block(f"{name}_colddo")
        cold_do.call(cold_callee)
        cold_back = fb.block(f"{name}_cold_ret")
        cold_back.jump(f"{name}_tail")

    state.program_builder.add(fb.build())


def build_workload(spec: SyntheticSpec) -> Workload:
    """Generate the program, behavior model, and phase script."""
    rng = random.Random(spec.seed)
    behavior = BehaviorModel(seed=spec.seed ^ 0xBEEF)
    state = _GenState(rng=rng, behavior=behavior)
    all_phases = list(range(spec.phases))

    # Cold filler code (never executed, statically present).
    for i in range(spec.cold_functions):
        name = f"{spec.name_slug()}_cold{i}"
        _build_cold_function(state, name, spec.cold_blocks_per_function)
        state.cold_names.append(name)

    # Assign work functions to phases: a shared pool plus per-phase ones.
    shared_count = max(0, min(
        spec.work_functions,
        round(spec.functions_per_phase * spec.shared_fraction),
    ))
    activity: Dict[str, List[int]] = {}
    work_names: List[str] = []
    for i in range(spec.work_functions):
        work_names.append(f"{spec.name_slug()}_work{i}")
    shared_pool = work_names[:shared_count]
    private_pool = work_names[shared_count:]
    for name in shared_pool:
        activity[name] = list(all_phases)
    per_phase_private = max(spec.functions_per_phase - shared_count, 0)
    cursor = 0
    for phase in all_phases:
        for _ in range(per_phase_private):
            if not private_pool:
                break
            name = private_pool[cursor % len(private_pool)]
            cursor += 1
            activity.setdefault(name, [])
            if phase not in activity[name]:
                activity[name].append(phase)
    for name in work_names:
        activity.setdefault(name, [])

    # Build work functions (+ helper chains, recursion, cold guards).
    for i, name in enumerate(work_names):
        callee = _build_helper_chain(state, spec, name, spec.call_depth)
        if spec.recursion and i == 0:
            recursive = _build_recursive_function(state, spec, f"{name}_rec")
            callee = callee or recursive
        cold_callee = (
            state.cold_names[i % len(state.cold_names)]
            if state.cold_names
            else None
        )
        _build_work_function(
            state,
            spec,
            name,
            active_phases=activity[name] or all_phases,
            all_phases=all_phases,
            shared=len(activity[name]) > 1,
            callee=callee,
            cold_callee=cold_callee,
        )

    executed = [n for n in work_names if activity[n]]
    slug = spec.name_slug()
    if spec.shared_root:
        # One dispatch function shared by all phases (perl's command
        # loop); a thin driver main calls it once per "input unit".
        process = f"{slug}_proc"
        _build_dispatcher(
            state, spec, process, executed, activity, all_phases,
            spec.dispatch_bias, is_entry=False,
            cold_callee=state.cold_names[0] if state.cold_names else None,
        )
        main_targets = [process]
        main_activity = {process: list(all_phases)}
    else:
        # Per-phase driver functions: distinct roots per phase.
        main_targets = []
        for phase in all_phases:
            driver = f"{slug}_drv{phase}"
            driver_targets = [n for n in executed if phase in activity[n]]
            driver_activity = {n: [phase] for n in driver_targets}
            _build_dispatcher(
                state, spec, driver, driver_targets, driver_activity,
                [phase], outer_bias=spec.dispatch_bias, is_entry=False,
            )
            main_targets.append(driver)
        main_activity = {d: [p] for p, d in enumerate(main_targets)}
    _build_dispatcher(
        state, spec, "main", main_targets, main_activity, all_phases,
        spec.outer_bias, is_entry=True,
        cold_callee=state.cold_names[1 % len(state.cold_names)]
        if state.cold_names else None,
    )

    program = state.program_builder.build(entry="main")
    # Give every conditional branch a stable id (construction order), so
    # outcomes in default-probability code that only drift reaches don't
    # hash on process-global uids — see BehaviorModel.register_branches.
    behavior.register_branches(
        instruction.uid
        for function in program.functions.values()
        for block in function.blocks
        for instruction in block.instructions
        if instruction.is_conditional_branch
    )
    script = _build_phase_script(spec, all_phases)
    limits = ExecutionLimits(max_branches=script.total_branches)
    return Workload(
        name=spec.name,
        program=program,
        behavior=behavior,
        phase_script=script,
        limits=limits,
        description=f"synthetic ({spec.phases} phases, seed {spec.seed})",
        meta={"spec": spec},
    )


def _build_phase_script(spec: SyntheticSpec, all_phases: List[int]) -> PhaseScript:
    weights = list(spec.phase_weights or [1.0] * spec.phases)
    if spec.phase_pattern == "repeat":
        sequence = all_phases + all_phases
        weights = weights + weights
    elif spec.phase_pattern == "return":
        sequence = all_phases + [all_phases[0]]
        weights = weights + [weights[0]]
    else:
        sequence = list(all_phases)
    total_weight = sum(weights)
    budget = max(spec.branch_budget, MIN_PHASE_BRANCHES * len(sequence))
    pairs: List[Tuple[int, int]] = []
    for phase, weight in zip(sequence, weights):
        length = max(MIN_PHASE_BRANCHES, int(budget * weight / total_weight))
        pairs.append((phase, length))
    return PhaseScript.from_pairs(pairs)
