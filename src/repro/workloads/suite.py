"""The benchmark suite modeled on the paper's Table 1.

Twelve benchmarks, nineteen benchmark-input pairs.  Each spec shapes
the synthetic generator (:mod:`repro.workloads.synthetic`) to evoke the
real benchmark's control-flow character — interpreter dispatch loops
with recursion for *130.li*, pipeline stages for *132.ijpeg*, a
loader-then-simulate structure for *124.m88ksim*, frame-type phases for
*mpeg2dec*, and so on.  Dynamic sizes follow Table 1 scaled by ~1/1000
(see DESIGN.md, "Substitutions"); the ``scale`` argument rescales all
budgets, subject to the per-phase floor the Hot Spot Detector needs.

The per-benchmark shape notes below cite the paper's own observations
(section 5): *124.m88ksim* has "two phases for loading a binary, each
with the same launch point"; *134.perl*'s "command execution loop may
serve as the root function for different packages"; *130.li* "exhibits
an interesting characteristic where a few weakly executed callers call
an important callee".
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from .base import Workload
from .synthetic import SyntheticSpec, build_workload

#: Approximate dynamic instructions per retired conditional branch in
#: generated code; used to turn Table 1 instruction counts into branch
#: budgets.
_INSTRUCTIONS_PER_BRANCH = 5


@dataclass(frozen=True)
class BenchmarkInput:
    """One row of Table 1: a benchmark plus one input."""

    benchmark: str
    input_name: str
    input_description: str
    #: Table 1 dynamic instruction count (millions, unscaled).
    paper_minsts: int
    spec: SyntheticSpec

    @property
    def key(self) -> Tuple[str, str]:
        return (self.benchmark, self.input_name)

    @property
    def full_name(self) -> str:
        return f"{self.benchmark}/{self.input_name}"


def _spec(name: str, seed: int, minsts: int, **kwargs) -> SyntheticSpec:
    """Build a spec with a branch budget scaled from Table 1."""
    budget = int(minsts * 1_000_000 / 1000 / _INSTRUCTIONS_PER_BRANCH)
    defaults = dict(branch_budget=budget)
    defaults.update(kwargs)
    return SyntheticSpec(name=name, seed=seed, **defaults)


def _build_suite() -> List[BenchmarkInput]:
    entries: List[BenchmarkInput] = []

    def add(benchmark, input_name, description, minsts, spec):
        entries.append(
            BenchmarkInput(benchmark, input_name, description, minsts, spec)
        )

    # 099.go — game AI: a wide, branchy evaluation with overlapping
    # phases and comparatively weak bias; Table 3's largest expansion.
    add("099.go", "A", "SPEC Train", 338, _spec(
        "099.go-A", seed=9901, minsts=338,
        phases=3, phase_pattern="return", work_functions=12,
        functions_per_phase=5, shared_fraction=0.6, shared_root=True,
        diamonds_per_function=4, swing_fraction=0.15, low_swing_fraction=0.18,
        cold_functions=70, cold_blocks_per_function=12,
    ))

    # 124.m88ksim — CPU simulator: loader phases sharing a launch point
    # followed by the simulate loop; linking is decisive (section 5.1).
    add("124.m88ksim", "A", "SPEC Train", 89, _spec(
        "124.m88ksim-A", seed=8801, minsts=89,
        phases=3, work_functions=7, functions_per_phase=2,
        shared_fraction=0.5, shared_root=True,
        cold_functions=130, cold_blocks_per_function=14,
        swing_fraction=0.18,
    ))

    # 130.li — lisp interpreter: shared eval loop, recursion, and the
    # weak-caller/important-callee structure the paper highlights.
    li = dict(
        phases=3, work_functions=8, functions_per_phase=3,
        shared_fraction=0.7, shared_root=True, recursion=True,
        cold_functions=90, cold_blocks_per_function=13,
    )
    add("130.li", "A", "SPEC Train", 122, _spec("130.li-A", 1301, 122, **li))
    add("130.li", "B", "6 Queens", 32, _spec("130.li-B", 1302, 32, **li))
    add("130.li", "C", "Reduced Ref", 362, _spec("130.li-C", 1303, 362, **li))

    # 132.ijpeg — image compression: sequential pipeline stages, each a
    # distinct root; little cross-phase sharing.
    ijpeg = dict(
        phases=4, work_functions=8, functions_per_phase=2,
        shared_fraction=0.25, shared_root=False,
        diamonds_per_function=3, block_size=6,
        cold_functions=110, cold_blocks_per_function=14,
    )
    add("132.ijpeg", "A", "SPEC Train", 1094, _spec("132.ijpeg-A", 1321, 1094, **ijpeg))
    add("132.ijpeg", "B", "Custom Faces", 57, _spec("132.ijpeg-B", 1322, 57, **ijpeg))
    add("132.ijpeg", "C", "Custom Scenery", 320, _spec("132.ijpeg-C", 1323, 320, **ijpeg))

    # 134.perl — interpreter: one command loop dispatching phase-specific
    # handlers; Table 3's smallest footprint (huge cold interpreter body).
    # Distinct command mixes keep the phases distinguishable to the
    # 30%/bias-flip similarity filter (handlers differ per phase and a
    # few shared branches swing hard).
    perl = dict(
        phases=3, work_functions=9, functions_per_phase=3,
        shared_fraction=0.34, shared_root=True,
        diamonds_per_function=4,
        cold_functions=200, cold_blocks_per_function=15,
        swing_fraction=0.25,
    )
    add("134.perl", "A", "SPEC Train 1", 1512, _spec("134.perl-A", 1341, 1512, **perl))
    add("134.perl", "B", "SPEC Train 2", 28, _spec("134.perl-B", 1342, 28, **perl))
    add("134.perl", "C", "SPEC Train 3", 8, _spec("134.perl-C", 1343, 8, **perl))

    # 164.gzip — compress/decompress alternation.
    add("164.gzip", "A", "SPEC Train", 1902, _spec(
        "164.gzip-A", 1641, 1902,
        phases=2, phase_pattern="repeat", work_functions=5,
        functions_per_phase=2, shared_fraction=0.4, shared_root=False,
        block_size=6, cold_functions=90, cold_blocks_per_function=13,
    ))

    # 175.vpr — place then route: two long phases; the paper notes
    # inference helps noticeably here.
    add("175.vpr", "A", "SPEC Test", 1012, _spec(
        "175.vpr-A", 1751, 1012,
        phases=2, work_functions=7, functions_per_phase=3,
        shared_fraction=0.3, shared_root=False,
        diamonds_per_function=4, cold_functions=100,
    ))

    # 181.mcf — network simplex: two phases over shared pricing code;
    # large coverage gain from linking (section 5.1).
    add("181.mcf", "A", "SPEC Test", 105, _spec(
        "181.mcf-A", 1811, 105,
        phases=2, phase_pattern="repeat", work_functions=5,
        functions_per_phase=2, shared_fraction=0.75, shared_root=True,
        swing_fraction=0.35, diamonds_per_function=4, cold_functions=60,
    ))

    # 197.parser — recursive-descent parsing: shared root, recursion,
    # strong linking gains (sections 5.1, 5.4).
    add("197.parser", "A", "UMN_sm_red", 178, _spec(
        "197.parser-A", 1971, 178,
        phases=3, phase_pattern="return", work_functions=8,
        functions_per_phase=3, shared_fraction=0.7, shared_root=True,
        recursion=True, swing_fraction=0.18,
        cold_functions=140, cold_blocks_per_function=14,
    ))

    # 255.vortex — OO database: transaction-type phases over a shared
    # dispatch core.
    vortex = dict(
        phases=3, work_functions=9, functions_per_phase=3,
        shared_fraction=0.6, shared_root=True,
        cold_functions=150, cold_blocks_per_function=15,
    )
    add("255.vortex", "A", "UMN_sm_red", 63, _spec("255.vortex-A", 2551, 63, **vortex))
    add("255.vortex", "B", "UMN_md_red", 315, _spec("255.vortex-B", 2552, 315, **vortex))

    # 300.twolf — placement/annealing: two phases; inference and linking
    # both matter (section 5.1).
    add("300.twolf", "A", "UMN_sm_red", 167, _spec(
        "300.twolf-A", 3001, 167,
        phases=2, phase_pattern="repeat", work_functions=6,
        functions_per_phase=2, shared_fraction=0.7, shared_root=True,
        swing_fraction=0.2, cold_functions=80,
    ))

    # mpeg2dec — video decode: I/P/B frame types repeating.
    add("mpeg2dec", "A", "Media Train", 99, _spec(
        "mpeg2dec-A", 7001, 99,
        phases=3, phase_pattern="repeat", work_functions=6,
        functions_per_phase=2, shared_fraction=0.5, shared_root=False,
        block_size=7, cold_functions=70,
    ))

    return entries


#: All Table 1 benchmark-input pairs, in paper order.
SUITE: List[BenchmarkInput] = _build_suite()

_BY_KEY: Dict[Tuple[str, str], BenchmarkInput] = {e.key: e for e in SUITE}


def benchmark_names() -> List[str]:
    """Distinct benchmark names, in Table 1 order."""
    seen: List[str] = []
    for entry in SUITE:
        if entry.benchmark not in seen:
            seen.append(entry.benchmark)
    return seen


def suite_entries() -> List[BenchmarkInput]:
    return list(SUITE)


def default_scale() -> float:
    """Experiment scale factor (``REPRO_SCALE`` env var, default 1.0).

    1.0 corresponds to ~1/1000 of Table 1's dynamic sizes, the largest
    scale that keeps the full 19-input matrix tractable in Python.
    """
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def load_benchmark(
    benchmark: str, input_name: str = "A", scale: Optional[float] = None
) -> Workload:
    """Build the workload for one Table 1 benchmark input.

    ``scale`` multiplies the dynamic branch budget (phase lengths keep
    the detector-imposed floor).  The returned workload's ``meta``
    carries the suite entry for reporting.
    """
    key = (benchmark, input_name)
    entry = _BY_KEY.get(key)
    if entry is None:
        known = ", ".join(sorted(f"{b}/{i}" for b, i in _BY_KEY))
        raise KeyError(f"unknown benchmark input {benchmark}/{input_name}; "
                       f"known: {known}")
    scale = default_scale() if scale is None else scale
    spec = entry.spec
    if scale != 1.0:
        spec = replace(spec, branch_budget=max(int(spec.branch_budget * scale), 1))
    workload = build_workload(spec)
    workload.meta["entry"] = entry
    return workload


def load_all(scale: Optional[float] = None) -> List[Workload]:
    """Build the whole 19-input matrix."""
    return [
        load_benchmark(entry.benchmark, entry.input_name, scale)
        for entry in SUITE
    ]
