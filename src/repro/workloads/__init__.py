"""Synthetic workload suite modeled on the paper's Table 1."""

from .base import Workload

__all__ = ["Workload"]


def __getattr__(name):
    # suite/synthetic are imported lazily to keep `repro.workloads`
    # importable before those modules exist in partial checkouts.
    if name in ("load_benchmark", "benchmark_names", "SUITE"):
        from . import suite

        return getattr(suite, name)
    raise AttributeError(f"module 'repro.workloads' has no attribute {name!r}")
