"""Vacuum Packing — reproduction of Barnes, Merten, Nystrom & Hwu,
"Vacuum Packing: Extracting Hardware-Detected Program Phases for
Post-Link Optimization" (MICRO 2002).

The recommended front door is :mod:`repro.api` — one declarative
config, one call::

    import repro

    config = repro.PipelineConfig(classic=True)
    result = repro.pack("134.perl/A", config)
    print(result.coverage.package_fraction)

The lower-level spelling (``VacuumPacker(config).pack(workload)``)
remains available for callers that manage workloads themselves.

The subpackages are:

* :mod:`repro.isa` — synthetic EPIC-like instruction set
* :mod:`repro.program` — blocks, CFGs, functions, call graphs, images
* :mod:`repro.analysis` — liveness, dominators, loops, weight estimation
* :mod:`repro.hsd` — the Hot Spot Detector hardware model
* :mod:`repro.engine` — behavioral + semantic execution engines
* :mod:`repro.regions` — hot-region identification (inference, growth)
* :mod:`repro.packages` — package construction, partial inlining, linking
* :mod:`repro.optimize` — layout, superblocks, EPIC list scheduler
* :mod:`repro.cpu` — branch predictors, caches, block-level timing
* :mod:`repro.postlink` — binary rewriting and the VacuumPacker API
* :mod:`repro.workloads` — the synthetic Table 1 benchmark suite
* :mod:`repro.experiments` — harnesses for Fig. 8/9/10 and Table 3
* :mod:`repro.service` — fleet profile aggregation + sharded packing farm
* :mod:`repro.obs` — structured tracing + metrics (``repro trace``)
* :mod:`repro.api` — :class:`~repro.api.PipelineConfig` and the
  :func:`~repro.api.pack` / :func:`~repro.api.profile` facades
"""

__version__ = "1.0.0"

__all__ = [
    "ObsConfig",
    "PipelineConfig",
    "ServerConfig",
    "VacuumPacker",
    "load_benchmark",
    "pack",
    "profile",
    "__version__",
]

#: repro.api names re-exported at the top level, lazily.
_API_NAMES = ("ObsConfig", "PipelineConfig", "ServerConfig", "pack",
              "profile")


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and avoid import cycles
    # for users who only need a subpackage.
    if name in _API_NAMES:
        from repro import api

        return getattr(api, name)
    if name == "VacuumPacker":
        from repro.postlink.vacuum import VacuumPacker

        return VacuumPacker
    if name == "load_benchmark":
        from repro.workloads.suite import load_benchmark

        return load_benchmark
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
