"""CPU timing substrate: branch predictors, fetch caches, block timing."""

from .branch_pred import (
    BranchTargetBuffer,
    GsharePredictor,
    PredictorStats,
    ReturnAddressStack,
)
from .caches import (
    CacheStats,
    FetchHierarchy,
    MemoryHierarchyConfig,
    SetAssociativeCache,
)
from .pipeline import InOrderPipeline, PipelineResult
from .timing import TimingResult, TimingSimulator

__all__ = [
    "BranchTargetBuffer",
    "CacheStats",
    "FetchHierarchy",
    "GsharePredictor",
    "InOrderPipeline",
    "MemoryHierarchyConfig",
    "PipelineResult",
    "PredictorStats",
    "ReturnAddressStack",
    "SetAssociativeCache",
    "TimingResult",
    "TimingSimulator",
]
