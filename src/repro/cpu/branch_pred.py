"""Branch prediction structures (paper Table 2).

* gshare direction predictor: 10-bit global history XORed into a table
  of 2-bit saturating counters;
* 1024-entry branch target buffer (4-way) for taken-transfer targets;
* 32-entry return address stack.

The paper's machine resolves branches in 7 cycles; the timing model
charges that on a direction mispredict (and on RAS misses), and a
1-cycle fetch bubble on every taken transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PredictorStats:
    predictions: int = 0
    mispredictions: int = 0
    btb_misses: int = 0
    ras_mispredicts: int = 0

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class GsharePredictor:
    """Classic gshare: global history XOR PC bits index a 2-bit PHT."""

    def __init__(self, history_bits: int = 10):
        self.history_bits = history_bits
        self.table_size = 1 << history_bits
        self.mask = self.table_size - 1
        self.counters = [2] * self.table_size  # weakly taken
        self.history = 0
        self.stats = PredictorStats()

    def _index(self, address: int) -> int:
        return ((address >> 3) ^ self.history) & self.mask

    def predict_and_update(self, address: int, taken: bool) -> bool:
        """Predict the branch at ``address``; returns prediction
        correctness and trains the structures."""
        index = self._index(address)
        counter = self.counters[index]
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.predictions += 1
        if not correct:
            self.stats.mispredictions += 1
        if taken and counter < 3:
            self.counters[index] = counter + 1
        elif not taken and counter > 0:
            self.counters[index] = counter - 1
        self.history = ((self.history << 1) | int(taken)) & self.mask
        return correct


class BranchTargetBuffer:
    """Set-associative BTB; a taken transfer missing here costs a
    redirect even when the direction was predicted correctly."""

    def __init__(self, entries: int = 1024, ways: int = 4):
        if entries % ways:
            raise ValueError("entries must divide evenly into ways")
        self.sets = entries // ways
        self.ways = ways
        self._table: List[Dict[int, int]] = [dict() for _ in range(self.sets)]
        self._tick = 0

    def lookup_and_update(self, address: int) -> bool:
        """True on hit; allocates/refreshes the entry either way."""
        self._tick += 1
        index = (address >> 3) % self.sets
        entry_set = self._table[index]
        hit = address in entry_set
        entry_set[address] = self._tick
        if not hit and len(entry_set) > self.ways:
            victim = min(entry_set, key=entry_set.get)
            del entry_set[victim]
        return hit


class ReturnAddressStack:
    """Bounded RAS; overflow drops the oldest entry, so deep call
    chains mispredict on the way back out."""

    def __init__(self, depth: int = 32):
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_address: int) -> None:
        self._stack.append(return_address)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        """Predicted return address, or ``None`` on underflow."""
        if not self._stack:
            return None
        return self._stack.pop()

    def pop_and_check(self, actual: int) -> bool:
        """True if the predicted return address matches ``actual``."""
        predicted = self.pop()
        return predicted == actual
