"""Instruction-fetch cache hierarchy (paper Table 2).

Table 2's memory system: 512 KB L1 instruction cache, 64 KB unified L2.
The timing model probes the hierarchy per fetched cache line; data-side
behaviour is identical between original and packed binaries (the same
loads execute), so only the instruction side is modeled dynamically —
the load latency itself is charged by the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """LRU set-associative cache over line addresses."""

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 4):
        if size_bytes % (line_bytes * ways):
            raise ValueError("size must divide evenly into ways * lines")
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = size_bytes // (line_bytes * ways)
        self._table: List[Dict[int, int]] = [dict() for _ in range(self.sets)]
        self._tick = 0
        self.stats = CacheStats()

    def access(self, line_address: int) -> bool:
        """True on hit; fills on miss (LRU eviction)."""
        self._tick += 1
        index = line_address % self.sets
        lines = self._table[index]
        self.stats.accesses += 1
        hit = line_address in lines
        if not hit:
            self.stats.misses += 1
        lines[line_address] = self._tick
        if len(lines) > self.ways:
            victim = min(lines, key=lines.get)
            del lines[victim]
        return hit


@dataclass
class MemoryHierarchyConfig:
    """Sizes and latencies of the fetch-side hierarchy."""

    l1i_bytes: int = 512 * 1024
    l2_bytes: int = 64 * 1024
    line_bytes: int = 64
    l1i_ways: int = 4
    l2_ways: int = 4
    l2_latency: int = 10
    memory_latency: int = 100


class FetchHierarchy:
    """L1I -> L2 -> memory, probed per fetched line."""

    def __init__(self, config: MemoryHierarchyConfig = MemoryHierarchyConfig()):
        self.config = config
        self.l1i = SetAssociativeCache(
            config.l1i_bytes, config.line_bytes, config.l1i_ways
        )
        self.l2 = SetAssociativeCache(
            config.l2_bytes, config.line_bytes, config.l2_ways
        )

    def fetch_penalty(self, address: int, size_bytes: int) -> int:
        """Cycles of fetch stall for a block at ``address``."""
        if size_bytes <= 0:
            return 0
        shift = self.config.line_bytes.bit_length() - 1
        first = address >> shift
        last = (address + size_bytes - 1) >> shift
        penalty = 0
        for line in range(first, last + 1):
            if self.l1i.access(line):
                continue
            if self.l2.access(line):  # fills on miss
                penalty += self.config.l2_latency
            else:
                penalty += self.config.memory_latency
        return penalty
