"""Block-granularity timing model of the Table 2 EPIC machine.

The paper measures speedup with "a custom software emulator that
performs cycle-by-cycle full-pipeline simulation"; simulating every
instruction through a ten-stage pipeline is infeasible in Python at
the experiment scale, so this model charges (see DESIGN.md,
"Substitutions"):

* each block's *statically scheduled* cycle count (independent
  per-block schedules for original code, superblock-aware incremental
  costs for packages — computed by :mod:`repro.optimize.passes`);
* a 1-cycle fetch bubble per taken control transfer (this is what the
  layout pass's fallthrough chaining wins back);
* the 7-cycle branch resolution penalty per gshare direction
  mispredict, BTB-miss redirects on taken branches, and RAS-mismatch
  penalties on returns;
* I-cache / L2 fetch-miss latencies per cache line of each block.

Both binaries run under identical structures, so the measured speedup
isolates the effects of packaging, layout, and rescheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.engine.executor import (
    KIND_BRANCH,
    KIND_CALL,
    KIND_JUMP,
    KIND_RET,
    BlockInfo,
    ExecutionSummary,
)
from repro.optimize.machine import MachineDescription, TABLE2_MACHINE
from repro.program.image import ProgramImage
from repro.program.program import Program
from repro.workloads.base import Workload

from .branch_pred import BranchTargetBuffer, GsharePredictor, ReturnAddressStack
from .caches import FetchHierarchy, MemoryHierarchyConfig

_BTB_REDIRECT_PENALTY = 2


@dataclass
class TimingResult:
    """Cycle count and component statistics for one run."""

    cycles: int
    instructions: int
    branches: int
    mispredict_cycles: int
    fetch_bubble_cycles: int
    icache_stall_cycles: int
    btb_redirect_cycles: int
    ras_penalty_cycles: int
    summary: ExecutionSummary
    predictor_accuracy: float
    icache_miss_rate: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class TimingSimulator:
    """Runs a workload over one program and accumulates cycles."""

    def __init__(
        self,
        program: Program,
        block_costs: Dict[int, int],
        machine: MachineDescription = TABLE2_MACHINE,
        hierarchy: Optional[MemoryHierarchyConfig] = None,
    ):
        self.program = program
        self.machine = machine
        self.image = ProgramImage(program)
        self.hierarchy = FetchHierarchy(hierarchy or MemoryHierarchyConfig())
        self.predictor = GsharePredictor()
        self.btb = BranchTargetBuffer()
        self.ras = ReturnAddressStack()

        # Per block uid: (cost, address, bytes, inverted-branch flag).
        self._static: Dict[int, Tuple[int, int, int, bool]] = {}
        for function in program.functions.values():
            for block in function.blocks:
                address = self.image.block_address[(function.name, block.label)]
                size_bytes = block.size() * 8
                self._static[block.uid] = (
                    block_costs.get(block.uid, 0),
                    address,
                    size_bytes,
                    bool(block.meta.get("branch_inverted")),
                )

        self._reset_counters()

    def _reset_counters(self) -> None:
        self.cycles = 0
        self.mispredict_cycles = 0
        self.fetch_bubbles = 0
        self.icache_stalls = 0
        self.btb_redirects = 0
        self.ras_penalties = 0
        self._pending_branch: Optional[Tuple[int, bool]] = None
        self._return_pending = False
        self._return_predicted: Optional[int] = None

    # -- hooks ----------------------------------------------------------
    def _on_block(self, info: BlockInfo) -> None:
        cost, address, size_bytes, inverted = self._static[info.uid]

        if self._return_pending:
            if self._return_predicted != address:
                self.ras_penalties += self.machine.branch_resolution
            self._return_pending = False
            self._return_predicted = None

        self.cycles += cost
        stall = self.hierarchy.fetch_penalty(address, size_bytes)
        self.icache_stalls += stall

        kind = info.kind
        if kind == KIND_BRANCH:  # resolved by the branch hook
            branch_address = address + max(size_bytes - 8, 0)
            self._pending_branch = (branch_address, inverted)
        elif kind == KIND_JUMP:
            self.fetch_bubbles += self.machine.taken_bubble
            if not self.btb.lookup_and_update(address + max(size_bytes - 8, 0)):
                self.btb_redirects += _BTB_REDIRECT_PENALTY
        elif kind == KIND_CALL:
            self.fetch_bubbles += self.machine.taken_bubble
            self.ras.push(address + size_bytes)
        elif kind == KIND_RET:
            self.fetch_bubbles += self.machine.taken_bubble
            self._return_pending = True
            self._return_predicted = self.ras.pop()

    def _on_branch(self, _uid: int, taken: bool, _phase: int) -> None:
        pending = self._pending_branch
        self._pending_branch = None
        if pending is None:
            return
        branch_address, inverted = pending
        physical_taken = taken != inverted
        correct = self.predictor.predict_and_update(branch_address, physical_taken)
        if not correct:
            self.mispredict_cycles += self.machine.branch_resolution
        elif physical_taken:
            self.fetch_bubbles += self.machine.taken_bubble
            if not self.btb.lookup_and_update(branch_address):
                self.btb_redirects += _BTB_REDIRECT_PENALTY

    # -- driving ---------------------------------------------------------
    def run(self, workload: Workload) -> TimingResult:
        self._reset_counters()
        summary = workload.run(
            program=self.program,
            block_hook=self._on_block,
            branch_hooks=[self._on_branch],
        )
        total = (
            self.cycles
            + self.mispredict_cycles
            + self.fetch_bubbles
            + self.icache_stalls
            + self.btb_redirects
            + self.ras_penalties
        )
        return TimingResult(
            cycles=total,
            instructions=summary.instructions,
            branches=summary.branches,
            mispredict_cycles=self.mispredict_cycles,
            fetch_bubble_cycles=self.fetch_bubbles,
            icache_stall_cycles=self.icache_stalls,
            btb_redirect_cycles=self.btb_redirects,
            ras_penalty_cycles=self.ras_penalties,
            summary=summary,
            predictor_accuracy=self.predictor.stats.accuracy,
            icache_miss_rate=self.hierarchy.l1i.stats.miss_rate,
        )
