"""Cycle-accurate in-order EPIC pipeline (validation model).

The paper's emulator "performs cycle-by-cycle full-pipeline simulation
of each instruction" on a ten-stage EPIC pipeline.  This module is the
per-instruction analogue of that emulator for *small* runs: it consumes
the semantic interpreter's retired-instruction stream and models

* in-order issue, ``issue_width`` instructions per cycle, bounded by
  the Table 2 functional-unit counts;
* a register scoreboard with full bypassing (results usable
  ``latency`` cycles after issue);
* gshare direction prediction with the 7-cycle resolution penalty,
  plus a 1-cycle fetch redirect on every taken transfer (ten front-end
  stages hide the rest under correct prediction).

It exists to *validate* the block-granularity
:class:`~repro.cpu.timing.TimingSimulator` used by the Figure 10
experiments: on programs small enough to run both, the two models must
agree on magnitudes and on which binary is faster (see
``tests/test_pipeline_validation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.engine.interpreter import Interpreter, InterpreterResult, MachineState
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import Reg
from repro.optimize.machine import MachineDescription, TABLE2_MACHINE
from repro.program.image import ProgramImage
from repro.program.program import Program

from .branch_pred import GsharePredictor


@dataclass
class PipelineResult:
    """Cycle count and statistics from one per-instruction simulation."""

    cycles: int
    instructions: int
    branches: int
    mispredictions: int
    interpreter: InterpreterResult

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class InOrderPipeline:
    """Per-instruction in-order issue model over a retired stream."""

    def __init__(
        self,
        program: Program,
        machine: MachineDescription = TABLE2_MACHINE,
        max_instructions: int = 300_000,
    ):
        self.program = program
        self.machine = machine
        self.max_instructions = max_instructions
        self.image = ProgramImage(program)

    def run(self, state: Optional[MachineState] = None) -> PipelineResult:
        machine = self.machine
        predictor = GsharePredictor()
        ready: Dict[Reg, int] = {}

        cycle = 0
        issued_in_cycle = 0
        unit_used: Dict[str, int] = {}
        next_fetch_cycle = 0  # earliest issue cycle after redirects
        instructions = 0
        branches = 0
        mispredictions = 0

        unit_limits = {
            "ialu": machine.ialu_units,
            "fpu": machine.fpu_units,
            "mem": machine.mem_units,
            "branch": machine.branch_units,
        }

        def retire(inst: Instruction, taken: Optional[bool]) -> None:
            nonlocal cycle, issued_in_cycle, unit_used
            nonlocal next_fetch_cycle, instructions, branches, mispredictions

            instructions += 1
            earliest = max(cycle, next_fetch_cycle)
            for src in inst.uses():
                earliest = max(earliest, ready.get(src, 0))

            unit = machine.unit_class(inst)
            limit = unit_limits.get(unit, machine.issue_width)

            # Advance to a cycle with issue and unit slots free.
            if earliest > cycle:
                cycle = earliest
                issued_in_cycle = 0
                unit_used = {}
            while (
                issued_in_cycle >= machine.issue_width
                or unit_used.get(unit, 0) >= limit
            ):
                cycle += 1
                issued_in_cycle = 0
                unit_used = {}

            issued_in_cycle += 1
            unit_used[unit] = unit_used.get(unit, 0) + 1

            if inst.dest is not None:
                ready[inst.dest] = cycle + machine.latency(inst)

            opcode = inst.opcode
            if opcode in (Opcode.BRZ, Opcode.BRNZ):
                branches += 1
                address = self.image.instruction_address.get(inst.uid, 0)
                correct = predictor.predict_and_update(address, bool(taken))
                if not correct:
                    mispredictions += 1
                    next_fetch_cycle = cycle + machine.branch_resolution
                elif taken:
                    next_fetch_cycle = cycle + 1 + machine.taken_bubble
            elif opcode in (Opcode.JUMP, Opcode.CALL, Opcode.RET):
                next_fetch_cycle = cycle + 1 + machine.taken_bubble

        interpreter = Interpreter(self.program, self.max_instructions)
        result = interpreter.run(state=state, instruction_hook=retire)

        return PipelineResult(
            cycles=cycle + 1,
            instructions=instructions,
            branches=branches,
            mispredictions=mispredictions,
            interpreter=result,
        )
