"""``repro.api`` — the one front door to the Vacuum Packing pipeline.

Historically every stage grew its own configuration object
(:class:`~repro.hsd.config.HSDConfig`,
:class:`~repro.regions.config.RegionConfig`,
:class:`~repro.hsd.filtering.SimilarityPolicy`, plus a fistful of
scattered ``VacuumPacker`` keyword arguments).  :class:`PipelineConfig`
composes all of them — including the observability options — into one
declarative, JSON-round-trippable document, and the module-level
:func:`pack` / :func:`profile` facades run the pipeline from it:

.. code-block:: python

    import repro

    config = repro.PipelineConfig(classic=True)
    result = repro.pack("134.perl/A", config)
    print(result.coverage.package_fraction)

``PipelineConfig.from_dict`` powers the ``--config pipeline.json`` flag
that every CLI subcommand accepts; ``to_dict`` round-trips exactly, so
a config can be captured from code, committed, and replayed.

:class:`ServerConfig` gives the long-running profile daemon
(:mod:`repro.server`) the same treatment: one frozen, strictly-parsed
document for everything that parameterizes a daemon — bind address,
default benchmark, checkpoint tag, GC budget, the embedded pipeline
document — powering ``repro server --config server.json``.

The old scattered-kwarg spelling (``VacuumPacker(classic=True, ...)``)
still works through a shim that emits a ``DeprecationWarning``; no
in-repo caller uses it outside the shim's own tests, and CI asserts
that stays true.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.hsd.config import HSDConfig
from repro.hsd.filtering import SimilarityPolicy
from repro.packages.ordering import check_ordering_mode
from repro.regions.config import RegionConfig

CONFIG_VERSION = 1


def _from_mapping(cls, payload: Dict, context: str):
    """Construct a config dataclass from a dict, rejecting unknown keys."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(
            f"{context}: unknown key(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    return cls(**payload)


@dataclass(frozen=True)
class ObsConfig:
    """Observability options of one pipeline invocation.

    * ``trace`` — enable span tracing for the run (the facades install
      a fresh tracer; ``repro trace`` sets this for the whole process).
    * ``trace_out`` — when tracing, also write the ledger here.
    * ``trace_format`` — export format for ``trace_out``
      (``chrome`` | ``jsonl``).
    """

    trace: bool = False
    trace_out: Optional[str] = None
    trace_format: str = "chrome"

    def __post_init__(self) -> None:
        from repro.obs.render import EXPORT_FORMATS

        if self.trace_format not in EXPORT_FORMATS:
            raise ValueError(
                f"trace_format must be one of {', '.join(EXPORT_FORMATS)}, "
                f"got {self.trace_format!r}"
            )


@dataclass(frozen=True)
class PipelineConfig:
    """Everything that shapes one profile → identify → pack run."""

    hsd: HSDConfig = field(default_factory=HSDConfig)
    region: RegionConfig = field(default_factory=RegionConfig)
    similarity: SimilarityPolicy = field(default_factory=SimilarityPolicy)
    link: bool = True
    optimize: bool = True
    classic: bool = False
    ordering: str = "best"
    strict: bool = False
    validate: bool = True
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        check_ordering_mode(self.ordering)

    # -- serialization -----------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-able document; ``from_dict`` round-trips it exactly."""
        return {
            "version": CONFIG_VERSION,
            "hsd": dataclasses.asdict(self.hsd),
            "region": dataclasses.asdict(self.region),
            "similarity": dataclasses.asdict(self.similarity),
            "link": self.link,
            "optimize": self.optimize,
            "classic": self.classic,
            "ordering": self.ordering,
            "strict": self.strict,
            "validate": self.validate,
            "obs": dataclasses.asdict(self.obs),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PipelineConfig":
        """Build a config from a (possibly partial) document.

        Missing keys take their defaults; unknown keys — at any level —
        raise ``ValueError`` rather than being silently dropped.
        """
        payload = dict(payload)
        version = payload.pop("version", CONFIG_VERSION)
        if version != CONFIG_VERSION:
            raise ValueError(
                f"unsupported pipeline config version {version!r} "
                f"(this build reads version {CONFIG_VERSION})"
            )
        kwargs: Dict[str, object] = {}
        for name, sub in (("hsd", HSDConfig), ("region", RegionConfig),
                          ("similarity", SimilarityPolicy),
                          ("obs", ObsConfig)):
            if name in payload:
                kwargs[name] = _from_mapping(
                    sub, dict(payload.pop(name)), name
                )
        scalars = {f.name for f in dataclasses.fields(cls)} - {
            "hsd", "region", "similarity", "obs",
        }
        unknown = sorted(set(payload) - scalars)
        if unknown:
            raise ValueError(
                f"pipeline config: unknown key(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(scalars))} "
                f"(+ hsd/region/similarity/obs sections)"
            )
        kwargs.update(payload)
        return cls(**kwargs)

    @classmethod
    def load(cls, path: str) -> "PipelineConfig":
        """Read a ``pipeline.json`` document (the ``--config`` flag)."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # -- convenience -------------------------------------------------
    def replace(self, **changes) -> "PipelineConfig":
        return dataclasses.replace(self, **changes)

    def packer(self):
        """A :class:`~repro.postlink.vacuum.VacuumPacker` for this
        config (never warns — this is the supported path)."""
        from repro.postlink.vacuum import VacuumPacker

        return VacuumPacker(self)


SERVER_CONFIG_VERSION = 1


@dataclass(frozen=True)
class ServerConfig:
    """Everything that parameterizes one profile daemon.

    The daemon (:class:`repro.server.ProfileDaemon`) is multi-tenant:
    one process serves many binaries, each behind its own aggregator
    and checkpoint slot, over one shared artifact store.  ``benchmark``
    and ``input_name`` name the *default tenant* — the one the PR-9
    flat routes alias and the one unstamped uploads fold into.

    Like :class:`PipelineConfig`, the document round-trips exactly
    through :meth:`to_dict` / :meth:`from_dict`, and unknown keys — at
    the top level or inside the embedded ``pipeline`` section — raise
    ``ValueError`` instead of being silently dropped.  This powers
    ``repro server --config server.json``.
    """

    #: Benchmark binary of the default tenant (``NAME`` + input).
    benchmark: str
    input_name: str = "A"
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back from
    #: :attr:`repro.server.ProfileDaemon.port` or the printed banner).
    port: int = 0
    scale: Optional[float] = None
    #: Merged phases per farm shard on ``/repack``.
    shard_size: int = 1
    jobs: Optional[int] = None
    #: Full pipeline-config document for the packer (``None`` =
    #: defaults), exactly as :class:`~repro.service.farm.FarmConfig`
    #: takes it.
    pipeline: Optional[Dict] = None
    #: Checkpoint-slot identity: one daemon tag = one resumable state.
    #: The default tenant checkpoints under the tag itself (so a
    #: single-tenant PR-9 checkpoint restores as the default tenant);
    #: tenant ``T`` checkpoints under ``tag:T``.
    tag: str = "server"
    #: Artifact-store byte cap enforced by the periodic GC sweep
    #: (``None`` = GC off).  The budget is shared by every tenant;
    #: only pinned slots (each tenant's checkpoint, the tenant
    #: directory) are exempt from eviction.
    gc_max_bytes: Optional[int] = None
    #: Seconds between GC sweeps.
    gc_interval: float = 30.0
    #: Optional directory of profile documents preloaded (and dedup'd)
    #: into the aggregators on boot — the ``repro serve --listen``
    #: migration path.  Documents route by their ``meta.benchmark``
    #: stamp exactly like uploads.
    profiles_dir: Optional[str] = None
    #: Seconds shutdown waits for in-flight requests to drain.
    drain_timeout: float = 5.0
    #: Artifact store root (``None`` = REPRO_ARTIFACT_STORE or the
    #: user cache default; ``"off"`` disables persistence).
    store: Optional[str] = None

    @property
    def default_tenant(self) -> str:
        """Tenant name the flat (PR-9) routes alias."""
        return f"{self.benchmark}/{self.input_name}"

    # -- serialization -----------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-able document; ``from_dict`` round-trips it exactly."""
        payload = dataclasses.asdict(self)
        payload["version"] = SERVER_CONFIG_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "ServerConfig":
        """Build a config from a (possibly partial) document.

        Missing keys take their defaults; unknown keys raise
        ``ValueError``.  A non-``None`` ``pipeline`` section is
        validated by parsing it as a :class:`PipelineConfig` document
        (then stored back as its full ``to_dict`` form, so partial
        pipeline sections normalize).
        """
        payload = dict(payload)
        version = payload.pop("version", SERVER_CONFIG_VERSION)
        if version != SERVER_CONFIG_VERSION:
            raise ValueError(
                f"unsupported server config version {version!r} "
                f"(this build reads version {SERVER_CONFIG_VERSION})"
            )
        pipeline = payload.pop("pipeline", None)
        if pipeline is not None:
            if not isinstance(pipeline, dict):
                raise ValueError(
                    "server config: 'pipeline' must be a PipelineConfig "
                    f"document (JSON object), got {type(pipeline).__name__}"
                )
            try:
                pipeline = PipelineConfig.from_dict(pipeline).to_dict()
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"server config: bad 'pipeline' section: {exc}"
                ) from exc
        if "benchmark" not in payload:
            raise ValueError(
                "server config: missing required key 'benchmark'"
            )
        config = _from_mapping(cls, payload, "server config")
        return dataclasses.replace(config, pipeline=pipeline)

    @classmethod
    def load(cls, path: str) -> "ServerConfig":
        """Read a ``server.json`` document (the ``--config`` flag)."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def replace(self, **changes) -> "ServerConfig":
        return dataclasses.replace(self, **changes)


#: Maps the legacy ``VacuumPacker`` keyword names onto config fields.
LEGACY_KWARGS = {
    "hsd_config": "hsd",
    "region_config": "region",
    "similarity": "similarity",
    "link": "link",
    "optimize": "optimize",
    "classic": "classic",
    "ordering": "ordering",
    "strict": "strict",
    "validate": "validate",
}


def config_from_legacy(
    base: Optional[PipelineConfig] = None, **legacy
) -> PipelineConfig:
    """A config with the given legacy kwargs applied over ``base``."""
    changes = {
        LEGACY_KWARGS[name]: value
        for name, value in legacy.items()
        if value is not None
    }
    return dataclasses.replace(base or PipelineConfig(), **changes)


# ---------------------------------------------------------------------------
# facade functions
# ---------------------------------------------------------------------------

def _resolve_workload(workload, scale: Optional[float] = None):
    """Accept a :class:`~repro.workloads.base.Workload` or a Table 1
    ``"benchmark/input"`` spec."""
    if isinstance(workload, str):
        from repro.workloads.suite import load_benchmark

        benchmark, _, input_name = workload.partition("/")
        return load_benchmark(benchmark, input_name or "A", scale=scale)
    return workload


def _traced(config: PipelineConfig):
    """Context manager honoring ``config.obs`` for one facade call."""
    from contextlib import contextmanager

    from repro import obs
    from repro.obs.render import write_export

    @contextmanager
    def runner():
        if not config.obs.trace or obs.tracing_enabled():
            # Either tracing is off, or an outer scope (repro trace)
            # already owns the tracer — never steal it.
            yield
            return
        tracer = obs.enable_tracing()
        try:
            yield
        finally:
            obs.disable_tracing()
            if config.obs.trace_out:
                write_export(
                    config.obs.trace_out,
                    tracer.spans(),
                    obs.default_registry().snapshot(),
                    fmt=config.obs.trace_format,
                )

    return runner()


def pack(
    workload: Union[str, object],
    config: Optional[PipelineConfig] = None,
    scale: Optional[float] = None,
):
    """Run the full Figure-1 pipeline; the recommended entry point.

    ``workload`` is a :class:`~repro.workloads.base.Workload` or a
    ``"benchmark/input"`` spec (``scale`` applies to specs only).
    Returns a :class:`~repro.postlink.vacuum.PackResult`.
    """
    config = config or PipelineConfig()
    target = _resolve_workload(workload, scale)
    with _traced(config):
        return config.packer().pack(target)


def profile(
    workload: Union[str, object],
    config: Optional[PipelineConfig] = None,
    scale: Optional[float] = None,
):
    """Run only the hardware-profiling step (Figure 1, stage 1).

    Returns a :class:`~repro.postlink.vacuum.ProfileResult` that can be
    handed back to :func:`pack` via ``VacuumPacker.pack(workload,
    profile=...)`` or persisted with :mod:`repro.hsd.serialize`.
    """
    config = config or PipelineConfig()
    target = _resolve_workload(workload, scale)
    with _traced(config):
        return config.packer().profile(target)


__all__ = [
    "CONFIG_VERSION",
    "LEGACY_KWARGS",
    "ObsConfig",
    "PipelineConfig",
    "SERVER_CONFIG_VERSION",
    "ServerConfig",
    "config_from_legacy",
    "pack",
    "profile",
]
